"""Differential transformation oracle.

The paper's core claim is that SLR/STR are *behaviour-preserving except
at the overflow itself*.  This module checks that claim end-to-end: the
original and the transformed translation unit are executed under the
bounds-checked VM on the same inputs, and every observable divergence
(stdout, exit status, memory-fault traps — see
:meth:`~repro.vm.interp.ExecutionResult.observable`) is classified:

``identical``
    Same observable behaviour — the common case on benign inputs.
``overflow-prevented``
    The original run died on a memory trap and the transformed run did
    not: the fix stopped a smash.  This is the *expected* divergence.
``benign-divergence``
    Outputs differ only by truncation (every transformed output line is
    a prefix of the original's), the documented behaviour of the
    truncating glib family / rejecting Annex K family on over-long but
    otherwise benign data.
``semantics-changed``
    Any other divergence — a transformation bug.  ``repro validate``
    exits non-zero when one is found.

Each file is probed with three input families (§IV's evaluation inputs,
made systematic): *benign* inputs that fit every reasonable buffer,
*overflow* inputs borrowed from the SAMATE generators (long enough to
smash every buffer in the suite), and *fuzz* inputs drawn from a
deterministically seeded PRNG — same seed, same bytes, in every process,
so serial and fork-pool validation verdicts are byte-identical.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from random import Random

from ..cfront.cache import ContentCache, content_key
from ..vm.interp import ExecutionResult, run_source
from . import profile
from .envknobs import int_knob

VERDICT_IDENTICAL = "identical"
VERDICT_PREVENTED = "overflow-prevented"
VERDICT_BENIGN = "benign-divergence"
VERDICT_CHANGED = "semantics-changed"

#: Verdict taxonomy, ordered from best to worst.
VERDICTS = (VERDICT_IDENTICAL, VERDICT_PREVENTED, VERDICT_BENIGN,
            VERDICT_CHANGED)

#: Default seed for the fuzz-input PRNG (``REPRO_VALIDATE_SEED``).
DEFAULT_FUZZ_SEED = 20140623

#: Default number of fuzz inputs per file.
DEFAULT_FUZZ_COUNT = 4

#: Step budget per differential run — far above any oracle test program,
#: far below the default VM limit (a runaway input should not stall a
#: whole batch).
DEFAULT_STEP_LIMIT = 2_000_000

#: Allocation budget per differential run (cumulative bytes) — a
#: pathological input driving a runaway allocation loop trips a
#: ``mem-limit`` resource fault instead of ballooning the worker.
DEFAULT_MEM_LIMIT = 64 * 1024 * 1024


def oracle_step_limit() -> int:
    """Per-run step budget for oracle executions
    (``REPRO_VALIDATE_STEPS``, default :data:`DEFAULT_STEP_LIMIT`)."""
    return int_knob("REPRO_VALIDATE_STEPS", DEFAULT_STEP_LIMIT)


def oracle_mem_limit() -> int | None:
    """Per-run allocation budget for oracle executions
    (``REPRO_VALIDATE_MEM`` bytes, default :data:`DEFAULT_MEM_LIMIT`;
    0 disables the budget)."""
    value = int_knob("REPRO_VALIDATE_MEM", DEFAULT_MEM_LIMIT, minimum=0)
    return value if value > 0 else None


@dataclass(frozen=True)
class DifferentialInput:
    """One stdin the oracle feeds to both program versions."""

    name: str
    stdin: bytes
    kind: str                   # 'benign' | 'overflow' | 'fuzz'


def benign_inputs() -> list[DifferentialInput]:
    """Inputs that fit comfortably in every buffer the suite declares."""
    return [
        DifferentialInput("empty", b"", "benign"),
        DifferentialInput("short-line", b"hi\n", "benign"),
        DifferentialInput("two-lines", b"one\ntwo\n", "benign"),
    ]


def overflow_inputs() -> list[DifferentialInput]:
    """Overflow-triggering inputs from the SAMATE generators: the suite
    stdin (sized to smash every ``gets`` buffer the flow/variant
    generators emit) plus a longer unterminated variant."""
    from ..samate.generator import DEFAULT_STDIN
    return [
        DifferentialInput("samate-overflow", DEFAULT_STDIN, "overflow"),
        DifferentialInput("long-unterminated", b"B" * 256, "overflow"),
    ]


def fuzz_inputs(seed: int, count: int = DEFAULT_FUZZ_COUNT,
                max_len: int = 96) -> list[DifferentialInput]:
    """``count`` pseudo-random inputs from a fixed seed.

    ``random.Random`` is specified to produce the same stream for the
    same seed on every platform and process, which keeps fuzz verdicts
    byte-identical across ``--jobs`` settings and cache modes.
    """
    rng = Random(seed)
    inputs = []
    for i in range(count):
        length = rng.randrange(0, max_len)
        body = bytes(rng.randrange(32, 127) for _ in range(length))
        if rng.random() < 0.75:
            body += b"\n"
        inputs.append(DifferentialInput(f"fuzz-{i}", body, "fuzz"))
    return inputs


def file_seed(filename: str, base_seed: int | None = None) -> int:
    """Per-file fuzz seed: stable across processes and orderings (uses
    ``zlib.crc32``, not the salted builtin ``hash``)."""
    if base_seed is None:
        base_seed = int_knob("REPRO_VALIDATE_SEED", DEFAULT_FUZZ_SEED,
                             minimum=None)
    return base_seed ^ zlib.crc32(filename.encode("utf-8", "replace"))


def default_inputs(filename: str = "", *, seed: int | None = None,
                   fuzz_count: int = DEFAULT_FUZZ_COUNT
                   ) -> list[DifferentialInput]:
    """The standard probe set: benign + overflow + seeded fuzz."""
    return (benign_inputs() + overflow_inputs()
            + fuzz_inputs(file_seed(filename, seed), fuzz_count))


# --------------------------------------------------------- classification

def _is_truncation(original: bytes, transformed: bytes) -> bool:
    """Is ``transformed`` a line-wise truncation of ``original``?

    True when the transformed run printed no *new* data: it has at most
    as many lines, and every line is a prefix of the original's
    corresponding line — the shape g_strlcpy-style truncation (or Annex
    K rejection, which empties the destination) produces.
    """
    if transformed == original:
        return False
    o_lines = original.split(b"\n")
    t_lines = transformed.split(b"\n")
    if len(t_lines) > len(o_lines):
        return False
    return all(o.startswith(t) for o, t in zip(o_lines, t_lines))


def classify(before: ExecutionResult, after: ExecutionResult
             ) -> tuple[str, str]:
    """Compare two runs on one input; returns ``(verdict, detail)``."""
    same_stdout = before.stdout == after.stdout
    if before.fault is None and after.fault is None:
        if before.exit_code != after.exit_code:
            return (VERDICT_CHANGED,
                    f"exit {before.exit_code} -> {after.exit_code}")
        if same_stdout:
            return (VERDICT_IDENTICAL, "")
        if _is_truncation(before.stdout, after.stdout):
            return (VERDICT_BENIGN,
                    f"stdout truncated {len(before.stdout)}B -> "
                    f"{len(after.stdout)}B")
        return (VERDICT_CHANGED,
                f"stdout diverged ({len(before.stdout)}B vs "
                f"{len(after.stdout)}B)")
    if before.fault is not None and after.fault is None:
        if before.memory_trapped:
            return (VERDICT_PREVENTED,
                    f"{before.fault} no longer triggers")
        # A step-limit/vm-error that vanished is not a fixed overflow.
        return (VERDICT_CHANGED,
                f"non-memory fault {before.fault} disappeared")
    if before.fault is None and after.fault is not None:
        return (VERDICT_CHANGED,
                f"transformation introduced {after.fault}")
    # Both faulted (e.g. a site SLR's precondition left untouched).
    if before.fault == after.fault and same_stdout:
        return (VERDICT_IDENTICAL, f"both trap on {before.fault}")
    if same_stdout or _is_truncation(before.stdout, after.stdout):
        return (VERDICT_BENIGN,
                f"still faults ({before.fault} -> {after.fault}) "
                f"with truncated output")
    return (VERDICT_CHANGED,
            f"faults and output both diverged "
            f"({before.fault} -> {after.fault})")


# --------------------------------------------------------------- reports

@dataclass
class InputVerdict:
    """The oracle's ruling for one differential input."""

    input: DifferentialInput
    verdict: str
    detail: str
    fault_before: str           # fault kind, '' if the run was clean
    fault_after: str

    def as_dict(self) -> dict:
        return {"input": self.input.name, "kind": self.input.kind,
                "verdict": self.verdict, "detail": self.detail,
                "fault_before": self.fault_before,
                "fault_after": self.fault_after}


@dataclass
class ValidationReport:
    """All verdicts for one original/transformed file pair."""

    filename: str
    verdicts: list[InputVerdict] = field(default_factory=list)
    unchanged: bool = False     # transformation queued no edits

    def counts(self) -> dict[str, int]:
        out = {verdict: 0 for verdict in VERDICTS}
        for v in self.verdicts:
            out[v.verdict] += 1
        return out

    @property
    def semantics_changed(self) -> int:
        return sum(1 for v in self.verdicts
                   if v.verdict == VERDICT_CHANGED)

    @property
    def overflows_prevented(self) -> int:
        return sum(1 for v in self.verdicts
                   if v.verdict == VERDICT_PREVENTED)

    @property
    def ok(self) -> bool:
        """No divergence that points at a transformation bug."""
        return self.semantics_changed == 0

    def divergences(self) -> list[InputVerdict]:
        return [v for v in self.verdicts
                if v.verdict != VERDICT_IDENTICAL]

    def summary(self) -> str:
        if self.unchanged:
            return "unchanged"
        counts = self.counts()
        return " ".join(f"{name}={counts[name]}" for name in VERDICTS
                        if counts[name])

    def as_dict(self) -> dict:
        return {"filename": self.filename, "unchanged": self.unchanged,
                "counts": self.counts(),
                "verdicts": [v.as_dict() for v in self.verdicts]}


# ------------------------------------------------------ persistent layer

#: VM execution results, keyed on (text, stdin, limits).  The VM is
#: deterministic, so a run is a pure function of its key; warm processes
#: replay table-III executions and oracle probes from disk.
_EXEC_CACHE = ContentCache("execute", family="execute")

#: Whole per-pair oracle verdicts — the big win: a warm ``--validate``
#: run re-executes nothing.
_VALIDATE_CACHE = ContentCache("validate", family="validate")


def cached_run_source(text: str, *, stdin: bytes = b"",
                      step_limit: int = 5_000_000,
                      mem_limit: int | None = None,
                      entry: str = "main") -> ExecutionResult:
    """:func:`repro.vm.interp.run_source` through the content-keyed
    execution cache (memory → disk → interpret)."""
    key = content_key("execute", text, stdin.hex(), str(step_limit),
                      str(mem_limit), entry)
    return _EXEC_CACHE.get_or_build(
        key, lambda: run_source(text, stdin=stdin, step_limit=step_limit,
                                mem_limit=mem_limit, entry=entry))


def _inputs_key_parts(inputs: list[DifferentialInput]) -> list[str]:
    """Key material covering every probe byte-for-byte — a changed
    ``REPRO_VALIDATE_SEED`` (different fuzz bytes) must miss, never
    replay a stale verdict."""
    return [f"{probe.name}|{probe.kind}|{probe.stdin.hex()}"
            for probe in inputs]


# ---------------------------------------------------------------- oracle

def validate_pair(original: str, transformed: str, *,
                  filename: str = "<unit>",
                  inputs: list[DifferentialInput] | None = None,
                  step_limit: int | None = None,
                  mem_limit: int | None = None,
                  entry: str = "main") -> ValidationReport:
    """Run ``original`` vs ``transformed`` on every input and classify.

    Both texts must be preprocessed and parseable (callers gate on the
    batch driver's ``parses`` flag).  Texts that are byte-identical skip
    execution entirely — nothing can have diverged.  Verdicts are served
    from the persistent store when the same pair was validated on the
    same probe bytes by any earlier run of this tool version.

    Every probe run carries a step and a cumulative-allocation budget
    (``step_limit`` / ``mem_limit``; ``None`` defers to the
    ``REPRO_VALIDATE_STEPS`` / ``REPRO_VALIDATE_MEM`` knobs), so one
    pathological input cannot hang or balloon a validation worker.
    """
    if original == transformed:
        return ValidationReport(filename, [], unchanged=True)
    if inputs is None:
        inputs = default_inputs(filename)
    if step_limit is None:
        step_limit = oracle_step_limit()
    if mem_limit is None:
        mem_limit = oracle_mem_limit()
    key = content_key("validate", filename, original, transformed,
                      str(step_limit), str(mem_limit), entry,
                      *_inputs_key_parts(inputs))

    def build() -> ValidationReport:
        return _run_probes(original, transformed, filename, inputs,
                           step_limit, mem_limit, entry)

    with profile.stage("validate"):
        return _VALIDATE_CACHE.get_or_build(key, build)


def _probe_verdict(probe: DifferentialInput, before: ExecutionResult,
                   after: ExecutionResult) -> InputVerdict:
    verdict, detail = classify(before, after)
    return InputVerdict(probe, verdict, detail, before.fault or "",
                        after.fault or "")


def _run_probes(original: str, transformed: str, filename: str,
                inputs: list[DifferentialInput], step_limit: int,
                mem_limit: int | None, entry: str,
                runs: dict | None = None) -> ValidationReport:
    """Execute every probe on both texts and classify; optionally
    record the ``(before, after)`` result pair per probe in ``runs``."""
    verdicts = []
    for probe in inputs:
        before = cached_run_source(original, stdin=probe.stdin,
                                   step_limit=step_limit,
                                   mem_limit=mem_limit, entry=entry)
        after = cached_run_source(transformed, stdin=probe.stdin,
                                  step_limit=step_limit,
                                  mem_limit=mem_limit, entry=entry)
        if runs is not None:
            runs[probe.name] = (before, after)
        verdicts.append(_probe_verdict(probe, before, after))
    return ValidationReport(filename, verdicts)


class IncrementalValidator:
    """Per-file differential oracle with probe-level execution reuse.

    Holds the :class:`ExecutionResult` pair of every probe from the last
    validated text pair.  On the next edit, a probe whose previous runs
    never *entered* a dirty function (see ``ExecutionResult.entered``)
    is re-classified from the stored results instead of re-executed: all
    code either run could reach is byte-identical, so by induction over
    VM steps the new runs would reproduce the old observables exactly —
    reuse changes latency, never verdicts.

    ``dirty`` must name every function whose definition differs between
    the previous and current text pair (on either side), including
    inserted and deleted ones; callers pass ``None`` for "unknown", which
    disables reuse for that update.  Changes outside function bodies
    (globals, directives) invalidate the whole file — callers must pass
    ``None`` then, as the incremental engine's preamble guard does.
    """

    def __init__(self, filename: str = "<unit>", *, entry: str = "main"):
        self.filename = filename
        self.entry = entry
        self._runs: dict[str, tuple[ExecutionResult, ExecutionResult]] = {}
        self._basis: tuple[str, str] | None = None
        #: Probe-execution accounting for diagnostics/bench.
        self.reused_probes = 0
        self.executed_probes = 0

    def validate(self, original: str, transformed: str,
                 dirty: frozenset | None = None, *,
                 inputs: list[DifferentialInput] | None = None,
                 step_limit: int | None = None,
                 mem_limit: int | None = None) -> ValidationReport:
        if original == transformed:
            # Mirror validate_pair's short-circuit.  No runs were taken,
            # so the stored basis no longer matches the next edit's
            # dirty set — drop it and re-execute next time.
            self._runs.clear()
            self._basis = None
            return ValidationReport(self.filename, [], unchanged=True)
        if inputs is None:
            inputs = default_inputs(self.filename)
        if step_limit is None:
            step_limit = oracle_step_limit()
        if mem_limit is None:
            mem_limit = oracle_mem_limit()
        new_runs: dict[str, tuple[ExecutionResult, ExecutionResult]] = {}
        verdicts = []
        reusable = dirty is not None and self._basis is not None
        with profile.stage("validate"):
            for probe in inputs:
                prev = self._runs.get(probe.name) if reusable else None
                if prev is not None and \
                        not ((prev[0].entered | prev[1].entered)
                             & dirty):
                    before, after = prev
                    self.reused_probes += 1
                else:
                    before = cached_run_source(
                        original, stdin=probe.stdin,
                        step_limit=step_limit, mem_limit=mem_limit,
                        entry=self.entry)
                    after = cached_run_source(
                        transformed, stdin=probe.stdin,
                        step_limit=step_limit, mem_limit=mem_limit,
                        entry=self.entry)
                    self.executed_probes += 1
                new_runs[probe.name] = (before, after)
                verdicts.append(_probe_verdict(probe, before, after))
        self._runs = new_runs
        self._basis = (original, transformed)
        report = ValidationReport(self.filename, verdicts)
        # Publish under the whole-pair key too, so a later cold
        # ``validate_pair`` on the same pair is a disk hit.
        key = content_key("validate", self.filename, original,
                          transformed, str(step_limit), str(mem_limit),
                          self.entry, *_inputs_key_parts(inputs))
        return _VALIDATE_CACHE.get_or_build(key, lambda: report)


def validate_result(result, *, filename: str = "<unit>",
                    inputs: list[DifferentialInput] | None = None,
                    step_limit: int | None = None,
                    mem_limit: int | None = None) -> ValidationReport:
    """Convenience: validate a :class:`TransformResult` end-to-end."""
    return validate_pair(result.original_text, result.new_text,
                         filename=filename, inputs=inputs,
                         step_limit=step_limit, mem_limit=mem_limit)
