"""SAFE TYPE REPLACEMENT (STR) — paper §II-B and §III-C.

Replaces local ``char*`` / ``char[]`` variables with ``stralloc*`` safe
strings and rewrites every use site following the replacement patterns of
Table II.  Preconditions (paper §II-B2):

* the variable is a char pointer or char array;
* it is locally declared — never a global, function parameter, or struct
  member (STR must not edit external files);
* it is not used in an unsupported C library function;
* when passed to a user-defined function, the interprocedural analysis
  must show the callee does not write through it (§III-C); and
* (batch consistency) a variable assigned to/from another char buffer is
  transformable only if that buffer is transformed too — candidate groups
  connected by assignments succeed or fail together.

The paper reports STR replacing 100% of the variables that pass its
preconditions; this implementation queues no edits at all for a variable
unless every one of its uses matches a supported pattern, so a transformed
program always parses and preserves behaviour.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from ..cfront.ctypes_model import ArrayType, PointerType
from ..cfront.rewriter import line_indent
from ..analysis.libcinfo import is_known_libc
from ..analysis.symtab import Symbol
from .transform import (
    PRECONDITION_FAILED, SiteOutcome, TRANSFORMED, Transformation,
)

#: Table II in code form: pattern id -> short description.  The renderer
#: implements these; tests assert each one individually.
REPLACEMENT_PATTERNS: dict[int, str] = {
    1: "identifier expression: no change",
    2: "declaration statement -> stralloc declaration + init",
    3: "allocation of buffer -> member assignments",
    4: "assignment to null: no change",
    5: "assignment to other (transformed) buffer: no change",
    6: "assignment to string literal -> stralloc_copybuf",
    7: "assignment to cast expression -> analyze rhs",
    8: "increment expression -> stralloc_increment_by",
    9: "decrement expression -> stralloc_decrement_by",
    10: "binary expression: sizeof(buf) -> buf->a",
    11: "array access -> stralloc_get_dereferenced_char_at",
    12: "assignment to array element -> stralloc_dereference_replace_by",
    13: "array element to array element -> replace_by(get_char_at(...))",
    14: "dereference assignment -> stralloc_dereference_replace_by",
    15: "dereferenced assignment to binary expr -> replace_by",
    16: "argument in C library function: function dependent",
    17: "argument in user-defined function -> foo(buf->s) if safe",
    18: "conditional/iteration statement: examine and replace expression",
}

# C library functions STR supports when a transformed buffer appears in
# them, with how each argument position is handled:
#   'dest'  — the buffer is written: a stralloc_* analog replaces the call
#   'read'  — the buffer is only read: pass buf->s (or buf->len for strlen)
_SUPPORTED_LIBC: dict[str, str] = {
    "strlen": "strlen",          # strlen(buf) -> buf->len
    "strcpy": "copy",            # strcpy(buf, x) -> stralloc_copys/copybuf
    "strcat": "cat",
    "memset": "memset",
    "memcpy": "memcpy",
    "strcmp": "readonly",
    "strncmp": "readonly",
    "strchr": "readonly",
    "strrchr": "readonly",
    "strstr": "readonly",
    "printf": "readonly",
    "fprintf": "readonly",
    "puts": "readonly",
    "fputs": "readonly",
    "sscanf": "readonly",
    "atoi": "readonly",
    "atol": "readonly",
    "atof": "readonly",
    "free": "free",              # free(buf) -> stralloc_free(buf)
}


class _Candidate:
    """One local char buffer variable under consideration."""

    __slots__ = ("symbol", "declarator", "declaration", "function",
                 "uses", "failure", "group")

    def __init__(self, symbol: Symbol, declarator: ast.Declarator,
                 declaration: ast.Declaration, function: ast.FunctionDef):
        self.symbol = symbol
        self.declarator = declarator
        self.declaration = declaration
        self.function = function
        self.uses: list[ast.Identifier] = []
        self.failure: tuple[str, str] | None = None
        self.group: set[int] = {symbol.uid}

    @property
    def name(self) -> str:
        return self.symbol.name

    @property
    def is_array(self) -> bool:
        return isinstance(self.symbol.ctype, ArrayType)

    @property
    def array_length(self) -> int | None:
        ctype = self.symbol.ctype
        return ctype.length if isinstance(ctype, ArrayType) else None

    def fail(self, reason: str, detail: str) -> None:
        if self.failure is None:
            self.failure = (reason, detail)


class SafeTypeReplacement(Transformation):
    """Batch (or single-variable) application of STR."""

    name = "STR"

    def __init__(self, text: str, filename: str = "<unit>", **kwargs):
        super().__init__(text, filename, **kwargs)
        self._accepted: dict[int, _Candidate] = {}
        self._any_transformed = False
        #: ``(uids, edits)`` per queued rewrite — which accepted variables
        #: a text edit serves.  Assignment-connected variables share
        #: rewrites (and pattern 5 queues none), so per-site attribution
        #: clusters over these records plus candidate groups.
        self._edit_records: list[tuple[frozenset[int], tuple]] = []

    # ------------------------------------------------------------- targets

    def find_targets(self) -> list[_Candidate]:
        candidates: list[_Candidate] = []
        for fn in self.unit.functions():
            for node in fn.body.walk():
                if not isinstance(node, ast.Declaration):
                    continue
                for declarator in node.declarators:
                    symbol = declarator.symbol
                    if symbol is None or not symbol.is_local:
                        continue
                    if _is_char_buffer(symbol.ctype):
                        candidates.append(
                            _Candidate(symbol, declarator, node, fn))
        return candidates

    # --------------------------------------------------------------- driver

    def run(self, targets=None):
        candidates = targets if targets is not None else self.find_targets()
        by_uid = {c.symbol.uid: c for c in candidates}

        self._collect_uses(by_uid)
        for candidate in candidates:
            self._check_init(candidate, by_uid)
            self._check_preconditions(candidate, by_uid)
        self._propagate_group_failures(candidates, by_uid)

        self._accepted = {c.symbol.uid: c for c in candidates
                          if c.failure is None}
        outcome_by_uid: dict[int, SiteOutcome] = {}
        for candidate in candidates:
            base = dict(transformation=self.name, target=candidate.name,
                        function=candidate.function.name,
                        line=self.line_of(candidate.declarator))
            if candidate.failure is None:
                outcome = SiteOutcome(**base, status=TRANSFORMED)
                outcome_by_uid[candidate.symbol.uid] = outcome
                self.outcomes.append(outcome)
            else:
                reason, detail = candidate.failure
                self.outcomes.append(SiteOutcome(
                    **base, status=PRECONDITION_FAILED, reason=reason,
                    detail=detail))

        self._rewrite()
        self._attach_cluster_edits(outcome_by_uid)
        final_mark = self.rewriter.checkpoint()
        self.finalize()
        finalize_edits = self.rewriter.edits_since(final_mark)
        new_text = self.rewriter.apply() if self.rewriter.has_edits \
            else self.text
        from .transform import TransformResult, sort_outcomes
        return TransformResult(self.name, self.text, new_text,
                               sort_outcomes(self.outcomes),
                               finalize_edits=finalize_edits)

    def _attach_cluster_edits(self,
                              outcome_by_uid: dict[int, SiteOutcome]
                              ) -> None:
        """Attribute queued edits to one representative outcome per
        cluster of accepted variables that must travel together.

        Two variables belong to the same cluster when a single text edit
        serves both (a shared declaration statement or an expression
        touching both) or when they are assignment-connected (candidate
        ``group``) — pattern 5 renders ``buf = buf2`` unchanged and
        queues no edit, so groups cannot be recovered from edit overlap
        alone.  The cluster's full edit list rides on the lowest-line
        member; the other members keep ``edits=()`` (they are not
        independently composable sites).
        """
        if not self._accepted:
            return
        parent = {uid: uid for uid in self._accepted}

        def find(uid: int) -> int:
            while parent[uid] != uid:
                parent[uid] = parent[parent[uid]]
                uid = parent[uid]
            return uid

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for uids, _edits in self._edit_records:
            uids = [u for u in uids if u in self._accepted]
            for other in uids[1:]:
                union(uids[0], other)
        for candidate in self._accepted.values():
            for other in candidate.group:
                if other in self._accepted:
                    union(candidate.symbol.uid, other)

        clusters: dict[int, list[int]] = {}
        for uid in self._accepted:
            clusters.setdefault(find(uid), []).append(uid)
        for members in clusters.values():
            edits: list = []
            for uids, record_edits in self._edit_records:
                if any(u in members for u in uids):
                    edits.extend(record_edits)
            rep = min(members,
                      key=lambda u: (outcome_by_uid[u].line,
                                     outcome_by_uid[u].target))
            outcome_by_uid[rep].edits = tuple(edits)

    # ------------------------------------------------------------ use scan

    def _collect_uses(self, by_uid: dict[int, _Candidate]) -> None:
        for fn in self.unit.functions():
            for node in fn.body.walk():
                if isinstance(node, ast.Identifier) and \
                        node.symbol is not None and \
                        node.symbol.uid in by_uid:
                    by_uid[node.symbol.uid].uses.append(node)

    # ------------------------------------------------------- preconditions

    def _check_init(self, candidate: _Candidate,
                    by_uid: dict[int, _Candidate]) -> None:
        """The declarator's initializer must itself be a Table II pattern."""
        init = candidate.declarator.init
        if init is None:
            return
        stripped = _strip_casts(init)
        if isinstance(stripped, (ast.StringLiteral, ast.InitList)):
            return
        if _is_null(stripped):
            return
        if isinstance(stripped, ast.Call) and \
                stripped.callee_name in ("malloc", "calloc", "alloca"):
            return
        if isinstance(stripped, ast.Identifier) and \
                stripped.symbol is not None and \
                stripped.symbol.uid in by_uid:
            candidate.group.add(stripped.symbol.uid)
            return
        candidate.fail(
            "unsupported-assignment",
            f"{candidate.name} initialized from a "
            f"{type(stripped).__name__}, not a Table II pattern")

    def _check_preconditions(self, candidate: _Candidate,
                             by_uid: dict[int, _Candidate]) -> None:
        for use in candidate.uses:
            self._check_use(candidate, use, by_uid)

    def _check_use(self, candidate: _Candidate, use: ast.Identifier,
                   by_uid: dict[int, _Candidate]) -> None:
        parent = use.parent
        name = candidate.name

        # Address of the buffer variable itself escapes its representation.
        if isinstance(parent, ast.Unary) and parent.op == "&":
            candidate.fail("address-taken", f"&{name} escapes")
            return
        if isinstance(parent, ast.ReturnStmt):
            candidate.fail("returned", f"{name} is returned from "
                           f"{candidate.function.name}")
            return
        if isinstance(parent, ast.Call):
            self._check_call_use(candidate, use, parent, by_uid)
            return
        if isinstance(parent, ast.Assignment):
            if parent.lhs is use and parent.op == "=":
                self._check_assigned_value(candidate, parent.rhs, by_uid)
                return
            if parent.lhs is use and parent.op in ("+=", "-="):
                return      # patterns 8/9
            if parent.rhs is use:
                # buf appears as a whole on some RHS: fine when the LHS is
                # a transformed buffer (pattern 5) or when buf->s
                # substitution is safe (read-only flow into non-pointer).
                lhs = parent.lhs
                if isinstance(lhs, ast.Identifier) and \
                        lhs.symbol is not None:
                    if lhs.symbol.uid in by_uid:
                        candidate.group.add(lhs.symbol.uid)
                        return
                    lhs_type = lhs.symbol.ctype
                    if isinstance(lhs_type, (PointerType, ArrayType)):
                        candidate.fail(
                            "escapes-assignment",
                            f"{name} assigned to untransformed pointer "
                            f"{lhs.symbol.name}")
                    return
                return
        # Uses nested inside a call argument (e.g. memset(buf - 1, ...)):
        # the rewrite passes a raw derived pointer, which is only safe in
        # read-only positions.
        call = use.find_ancestor(ast.Call)
        if call is not None:
            containing = next((i for i, a in enumerate(call.args)
                               if a is use or _contains(a, use)), None)
            if containing is not None and call.args[containing] is not use:
                callee = call.callee_name
                if callee is None:
                    candidate.fail("indirect-call",
                                   f"{name} passed through a function "
                                   f"pointer")
                elif is_known_libc(callee):
                    from ..analysis.libcinfo import libc_writes_through
                    if libc_writes_through(callee, containing):
                        candidate.fail(
                            "unsupported-libfn",
                            f"derived pointer of {name} written by "
                            f"{callee}")
                elif self.analysis.interproc.call_may_write_arg(
                        call, containing):
                    candidate.fail(
                        "callee-may-write",
                        f"{callee}() may modify {name} through a derived "
                        f"pointer")

    def _check_assigned_value(self, candidate: _Candidate,
                              rhs: ast.Expression,
                              by_uid: dict[int, _Candidate]) -> None:
        rhs = _strip_casts(rhs)
        if isinstance(rhs, ast.Identifier) and rhs.symbol is not None:
            if rhs.symbol.uid in by_uid:
                candidate.group.add(rhs.symbol.uid)     # pattern 5
                return
            if _is_char_buffer(rhs.symbol.ctype):
                candidate.fail(
                    "source-not-transformed",
                    f"{candidate.name} assigned from untransformed buffer "
                    f"{rhs.symbol.name}")
            return
        if _is_null(rhs) or isinstance(rhs, ast.StringLiteral):
            return                                      # patterns 4 and 6
        if isinstance(rhs, ast.Call):
            callee = rhs.callee_name
            if callee in ("malloc", "calloc", "alloca"):
                stmt = rhs.find_ancestor(ast.ExprStmt)
                assign = rhs.parent
                if not (isinstance(assign, ast.Assignment) and
                        isinstance(assign.parent, ast.ExprStmt)):
                    candidate.fail(
                        "nested-allocation",
                        f"{candidate.name} allocated inside a larger "
                        f"expression")
                return                                  # pattern 3
            candidate.fail("assigned-from-call",
                           f"{candidate.name} = {callee}(...) has no "
                           f"stralloc analog")
            return
        if isinstance(rhs, ast.Binary) and rhs.op in ("+", "-"):
            base = _strip_casts(rhs.lhs)
            if isinstance(base, ast.Identifier) and base.symbol is not None \
                    and base.symbol.uid in by_uid:
                return      # buf = buf2 + n handled via increment pattern
        candidate.fail("unsupported-assignment",
                       f"{candidate.name} = <{type(rhs).__name__}> not a "
                       f"Table II pattern")

    def _check_call_use(self, candidate: _Candidate, use: ast.Identifier,
                        call: ast.Call,
                        by_uid: dict[int, _Candidate]) -> None:
        callee = call.callee_name
        if callee is None:
            candidate.fail("indirect-call",
                           f"{candidate.name} passed through a function "
                           f"pointer")
            return
        arg_index = next((i for i, a in enumerate(call.args) if a is use),
                         None)
        if arg_index is None:       # the use is nested deeper in an arg
            return
        if is_known_libc(callee):
            if callee in _SUPPORTED_LIBC:
                return
            # Other known libc functions are fine in read-only positions
            # (the call gets buf->s); a *written* position has no stralloc
            # analog, so the precondition fails (paper: "not used in an
            # unsupported C library function").
            from ..analysis.libcinfo import libc_writes_through
            if libc_writes_through(callee, arg_index):
                candidate.fail(
                    "unsupported-libfn",
                    f"{candidate.name} written by unsupported C library "
                    f"function {callee}")
            return
        # User-defined function: interprocedural write check (§III-C).
        if self.analysis.interproc.call_may_write_arg(call, arg_index):
            candidate.fail(
                "callee-may-write",
                f"{callee}() may modify {candidate.name} through "
                f"parameter {arg_index}")

    def _propagate_group_failures(self, candidates: list[_Candidate],
                                  by_uid: dict[int, _Candidate]) -> None:
        # Union groups to a fixed point, then fail whole groups together.
        changed = True
        while changed:
            changed = False
            for candidate in candidates:
                merged = set(candidate.group)
                for uid in candidate.group:
                    other = by_uid.get(uid)
                    if other is not None:
                        merged |= other.group
                if merged != candidate.group:
                    candidate.group = merged
                    changed = True
        for candidate in candidates:
            if candidate.failure is not None:
                continue
            for uid in candidate.group:
                other = by_uid.get(uid)
                if other is not None and other.failure is not None:
                    candidate.fail(
                        "group-member-failed",
                        f"{candidate.name} is assignment-connected to "
                        f"{other.name} ({other.failure[0]})")
                    break

    # -------------------------------------------------------------- rewrite

    def _rewrite(self) -> None:
        if not self._accepted:
            return
        self._any_transformed = True
        rewritten_decls: set[int] = set()
        for candidate in self._accepted.values():
            if id(candidate.declaration) not in rewritten_decls:
                self._rewrite_declaration(candidate.declaration)
                rewritten_decls.add(id(candidate.declaration))
        # Rewrite use sites statement by statement.
        for fn in self.unit.functions():
            self._rewrite_statements(fn.body)

    # ----- declarations (pattern 2, with array capacity and initializers)

    def _rewrite_declaration(self, decl: ast.Declaration) -> None:
        indent = line_indent(self.text, decl.extent.start)
        kept: list[str] = []
        names: list[str] = []
        shadows: list[str] = []
        inits: list[str] = []

        prefix = self.text[decl.extent.start:
                           decl.declarators[0].extent.start].rstrip()
        for declarator in decl.declarators:
            symbol = declarator.symbol
            if symbol is None or symbol.uid not in self._accepted:
                kept.append(f"{prefix} {self.src(declarator)};")
                continue
            name = declarator.name
            names.append(name)
            shadows.append(f"ssss_{name} = {{0,0,0}}")
            inits.append(f"{name} = &ssss_{name};")
            candidate = self._accepted[symbol.uid]
            if candidate.is_array and candidate.array_length is not None:
                inits.append(f"{name}->a = {candidate.array_length};")
            if declarator.init is not None:
                inits.extend(self._init_statements(name, declarator.init))

        lines: list[str] = []
        lines.extend(kept)
        if names:
            lines.append("stralloc " +
                         ", ".join(f"*{n}" for n in names) + ";")
            lines.append("stralloc " + ", ".join(shadows) + ";")
            lines.extend(inits)
        body = ("\n" + indent).join(lines)
        mark = self.rewriter.checkpoint()
        self.rewriter.replace(decl.extent, body)
        uids = frozenset(d.symbol.uid for d in decl.declarators
                         if d.symbol is not None
                         and d.symbol.uid in self._accepted)
        self._edit_records.append((uids, self.rewriter.edits_since(mark)))

    def _init_statements(self, name: str, init: ast.Expression) -> list[str]:
        init = _strip_casts(init)
        if isinstance(init, ast.StringLiteral):
            text = init.text
            return [f"stralloc_copybuf({name}, {text}, strlen({text}));"]
        if isinstance(init, ast.Call) and \
                init.callee_name in ("malloc", "calloc", "alloca"):
            size = self._allocation_size_text(init)
            return [f"{name}->s = malloc({size});",
                    f"{name}->f = {name}->s;",
                    f"{name}->a = {size};"]
        if _is_null(init):
            return []
        if isinstance(init, ast.Identifier) and init.symbol is not None \
                and init.symbol.uid in self._accepted:
            return [f"{name} = {init.name};"]
        if isinstance(init, ast.InitList):
            # char buf[N] = {...}: write elements one by one.
            out = []
            for i, item in enumerate(init.items):
                out.append(f"stralloc_dereference_replace_by({name}, {i}, "
                           f"{self._render(item)});")
            return out
        return [f"stralloc_copys({name}, {self._render(init)});"]

    def _allocation_size_text(self, call: ast.Call) -> str:
        if call.callee_name == "calloc" and len(call.args) == 2:
            return (f"({self._render(call.args[0])}) * "
                    f"({self._render(call.args[1])})")
        if call.args:
            return self._render(call.args[0])
        return "0"

    # -------------------------------------------------- statement rewriting

    def _rewrite_statements(self, node: ast.Node) -> None:
        if isinstance(node, ast.CompoundStmt):
            for item in node.items:
                self._rewrite_statements(item)
        elif isinstance(node, ast.ExprStmt):
            if node.expr is not None:
                self._replace_expr(node.expr)
        elif isinstance(node, ast.IfStmt):
            self._replace_expr(node.cond)
            self._rewrite_statements(node.then_stmt)
            if node.else_stmt is not None:
                self._rewrite_statements(node.else_stmt)
        elif isinstance(node, ast.WhileStmt):
            self._replace_expr(node.cond)
            self._rewrite_statements(node.body)
        elif isinstance(node, ast.DoWhileStmt):
            self._rewrite_statements(node.body)
            self._replace_expr(node.cond)
        elif isinstance(node, ast.ForStmt):
            if isinstance(node.init, ast.ExprStmt) and \
                    node.init.expr is not None:
                self._replace_expr(node.init.expr)
            elif isinstance(node.init, ast.Declaration):
                pass        # declarations handled in _rewrite_declaration
            if node.cond is not None:
                self._replace_expr(node.cond)
            if node.advance is not None:
                self._replace_expr(node.advance)
            self._rewrite_statements(node.body)
        elif isinstance(node, ast.ReturnStmt):
            if node.value is not None:
                self._replace_expr(node.value)
        elif isinstance(node, ast.SwitchStmt):
            self._replace_expr(node.cond)
            self._rewrite_statements(node.body)
        elif isinstance(node, (ast.CaseStmt, ast.DefaultStmt,
                               ast.LabelStmt)):
            self._rewrite_statements(node.body)
        elif isinstance(node, ast.Declaration):
            # Declarations of *other* variables may still use the buffer in
            # their initializers.
            if not any(d.symbol is not None and
                       d.symbol.uid in self._accepted
                       for d in node.declarators):
                for declarator in node.declarators:
                    if declarator.init is not None:
                        self._replace_expr(declarator.init)

    def _replace_expr(self, expr: ast.Expression) -> None:
        if not self._involves_candidate(expr):
            return
        rendered = self._render(expr)
        if rendered != self.src(expr):
            mark = self.rewriter.checkpoint()
            self.rewriter.replace(expr.extent, rendered)
            uids = frozenset(n.symbol.uid for n in expr.walk()
                             if isinstance(n, ast.Identifier)
                             and n.symbol is not None
                             and n.symbol.uid in self._accepted)
            self._edit_records.append(
                (uids, self.rewriter.edits_since(mark)))

    def _involves_candidate(self, expr: ast.Node) -> bool:
        return any(isinstance(n, ast.Identifier) and n.symbol is not None
                   and n.symbol.uid in self._accepted
                   for n in expr.walk())

    # ------------------------------------------------------------ rendering

    def _render(self, expr: ast.Expression) -> str:
        """Render an expression with Table II patterns applied."""
        if not self._involves_candidate(expr):
            return self.src(expr)

        if isinstance(expr, ast.Assignment):
            return self._render_assignment(expr)

        if isinstance(expr, ast.Unary) and expr.op in ("++", "--"):
            target = _strip_casts(expr.operand)
            if self._candidate_of(target) is not None:
                fn = "stralloc_increment_by" if expr.op == "++" \
                    else "stralloc_decrement_by"
                return f"{fn}({self._cand_name(target)}, 1)"     # 8 / 9
            # (*buf)++ and buf[i]++ fall back to read+write pairs.
            inner = self._deref_target(expr.operand)
            if inner is not None:
                name, index = inner
                op = "+" if expr.op == "++" else "-"
                return (f"stralloc_dereference_replace_by({name}, {index}, "
                        f"stralloc_get_dereferenced_char_at({name}, "
                        f"{index}) {op} 1)")
            return self._render_generic(expr)

        if isinstance(expr, ast.ArrayAccess):
            base = _strip_casts(expr.base)
            if self._candidate_of(base) is not None:             # 11
                return (f"stralloc_get_dereferenced_char_at("
                        f"{self._cand_name(base)}, "
                        f"{self._render(expr.index)})")
            return self._render_generic(expr)

        if isinstance(expr, ast.Unary) and expr.op == "*":
            inner = self._deref_target(expr)
            if inner is not None:
                name, index = inner
                return (f"stralloc_get_dereferenced_char_at({name}, "
                        f"{index})")
            return self._render_generic(expr)

        if isinstance(expr, ast.SizeofExpr):
            target = _strip_casts(expr.operand)
            if self._candidate_of(target) is not None:           # 10
                return f"{self._cand_name(target)}->a"
            return self._render_generic(expr)

        if isinstance(expr, ast.Call):
            return self._render_call(expr)

        if isinstance(expr, ast.Identifier):
            candidate = self._candidate_of(expr)
            if candidate is not None:
                # Bare identifier in an rvalue context: the raw data
                # pointer (read-only contexts passed the feasibility scan).
                return f"{expr.name}->s"
            return self.src(expr)

        return self._render_generic(expr)

    def _render_assignment(self, expr: ast.Assignment) -> str:
        lhs = expr.lhs
        lhs_stripped = _strip_casts(lhs)

        # Compound assignment on the buffer pointer: patterns 8/9.
        if expr.op in ("+=", "-=") and \
                self._candidate_of(lhs_stripped) is not None:
            fn = "stralloc_increment_by" if expr.op == "+=" \
                else "stralloc_decrement_by"
            return (f"{fn}({self._cand_name(lhs_stripped)}, "
                    f"{self._render(expr.rhs)})")

        if expr.op != "=":
            return self._render_generic(expr)

        # buf = ... (patterns 3, 4, 5, 6, 7)
        if self._candidate_of(lhs_stripped) is not None:
            name = self._cand_name(lhs_stripped)
            rhs = _strip_casts(expr.rhs)
            if _is_null(rhs):                                     # 4
                return self.src(expr)
            if isinstance(rhs, ast.Identifier) and \
                    self._candidate_of(rhs) is not None:          # 5
                return f"{name} = {rhs.name}"
            if isinstance(rhs, ast.StringLiteral):                # 6
                return (f"stralloc_copybuf({name}, {rhs.text}, "
                        f"strlen({rhs.text}))")
            if isinstance(rhs, ast.Call) and \
                    rhs.callee_name in ("malloc", "calloc", "alloca"):
                size = self._allocation_size_text(rhs)            # 3
                return (f"({name}->s = malloc({size}), "
                        f"{name}->f = {name}->s, {name}->a = {size})")
            if isinstance(rhs, ast.Binary) and rhs.op in ("+", "-"):
                base = _strip_casts(rhs.lhs)
                if isinstance(base, ast.Identifier) and \
                        self._candidate_of(base) is not None:
                    fn = "stralloc_increment_by" if rhs.op == "+" \
                        else "stralloc_decrement_by"
                    prefix = "" if base.name == name else \
                        f"{name} = {base.name}, "
                    return (f"({prefix}{fn}({name}, "
                            f"{self._render(rhs.rhs)}))")
            return self._render_generic(expr)

        # buf[i] = v and *(buf+k) = v (patterns 12-15)
        if isinstance(lhs_stripped, ast.ArrayAccess):
            base = _strip_casts(lhs_stripped.base)
            if self._candidate_of(base) is not None:
                return (f"stralloc_dereference_replace_by("
                        f"{self._cand_name(base)}, "
                        f"{self._render(lhs_stripped.index)}, "
                        f"{self._render(expr.rhs)})")
        if isinstance(lhs_stripped, ast.Unary) and lhs_stripped.op == "*":
            inner = self._deref_target(lhs_stripped)
            if inner is not None:
                name, index = inner
                return (f"stralloc_dereference_replace_by({name}, {index}, "
                        f"{self._render(expr.rhs)})")
        return self._render_generic(expr)

    def _render_call(self, call: ast.Call) -> str:
        callee = call.callee_name
        args = call.args

        def cand(i: int) -> _Candidate | None:
            return self._candidate_of(_strip_casts(args[i])) \
                if i < len(args) else None

        if callee == "strlen" and len(args) == 1 and cand(0) is not None:
            return f"{self._cand_name(args[0])}->len"             # 16
        if callee == "strcpy" and len(args) == 2 and cand(0) is not None:
            dest = self._cand_name(args[0])
            if cand(1) is not None:
                src = self._cand_name(args[1])
                return f"stralloc_copybuf({dest}, {src}->s, {src}->len)"
            return f"stralloc_copys({dest}, {self._render(args[1])})"
        if callee == "strcat" and len(args) == 2 and cand(0) is not None:
            dest = self._cand_name(args[0])
            if cand(1) is not None:
                src = self._cand_name(args[1])
                return f"stralloc_catbuf({dest}, {src}->s, {src}->len)"
            return f"stralloc_cats({dest}, {self._render(args[1])})"
        if callee == "memset" and len(args) == 3 and cand(0) is not None:
            return (f"stralloc_memset({self._cand_name(args[0])}, "
                    f"{self._render(args[1])}, {self._render(args[2])})")
        if callee == "memcpy" and len(args) == 3 and cand(0) is not None:
            dest = self._cand_name(args[0])
            source = _strip_casts(args[1])
            if self._candidate_of(source) is not None:
                src = self._cand_name(source)
                return (f"stralloc_copybuf({dest}, {src}->s, "
                        f"{self._render(args[2])})")
            return (f"stralloc_copybuf({dest}, {self._render(args[1])}, "
                    f"{self._render(args[2])})")
        if callee == "free" and len(args) == 1 and cand(0) is not None:
            return f"stralloc_free({self._cand_name(args[0])})"
        # Anything else — libc read-only positions and user-defined
        # functions that passed the write check — takes the raw data
        # pointer (pattern 17: foo(buf) -> foo(buf->s)).
        return self._render_generic(call)

    def _render_generic(self, expr: ast.Expression) -> str:
        """Rebuild this expression's text, splicing in rendered children."""
        pieces: list[tuple[int, int, str]] = []
        for child in expr.children():
            if isinstance(child, ast.Expression) and \
                    self._involves_candidate(child):
                pieces.append((child.extent.start, child.extent.end,
                               self._render(child)))
        if not pieces:
            return self.src(expr)
        pieces.sort()
        base = expr.extent.start
        text = self.src(expr)
        out: list[str] = []
        cursor = 0
        for start, end, replacement in pieces:
            out.append(text[cursor:start - base])
            out.append(replacement)
            cursor = end - base
        out.append(text[cursor:])
        return "".join(out)

    # -------------------------------------------------------------- helpers

    def _candidate_of(self, expr: ast.Node) -> _Candidate | None:
        if isinstance(expr, ast.Identifier) and expr.symbol is not None:
            return self._accepted.get(expr.symbol.uid)
        return None

    def _cand_name(self, expr: ast.Node) -> str:
        stripped = _strip_casts(expr)
        assert isinstance(stripped, ast.Identifier)
        return stripped.name

    def _deref_target(self, expr: ast.Node) -> tuple[str, str] | None:
        """Match *(buf + k) / *buf for a candidate buf; returns (name,
        index_text)."""
        if not (isinstance(expr, ast.Unary) and expr.op == "*"):
            return None
        inner = _strip_casts(expr.operand)
        if self._candidate_of(inner) is not None:
            return (self._cand_name(inner), "0")
        if isinstance(inner, ast.Binary) and inner.op in ("+", "-"):
            base = _strip_casts(inner.lhs)
            if self._candidate_of(base) is not None:
                offset = self._render(inner.rhs)
                if inner.op == "-":
                    offset = f"-({offset})"
                return (self._cand_name(base), offset)
        return None

    def finalize(self) -> None:
        for block in finalize_blocks(self.text, self._any_transformed):
            self.rewriter.insert_before(0, block)


def finalize_blocks(text: str, any_transformed: bool) -> list[str]:
    """The finalize-stage blocks STR inserts at offset 0, as a pure
    function of the input text and whether any site was rewritten —
    shared with the incremental engine, which reconstructs the block
    from cached per-function outcomes."""
    if not any_transformed:
        return []
    if "stralloc_ready" in text:
        return []       # stralloc.h already included / previously added
    from .stralloc import STRALLOC_DECLARATIONS
    return ["/* Declarations added by SAFE TYPE REPLACEMENT. */\n"
            + STRALLOC_DECLARATIONS + "\n"]


def _contains(root: ast.Node, target: ast.Node) -> bool:
    return any(node is target for node in root.walk())


def _is_char_buffer(ctype) -> bool:
    """Plain ``char`` buffers only: STR replaces *string* buffers.

    ``unsigned char`` arrays are byte buffers (checksums, pixel rows, wire
    data), not C strings — replacing them with a string type would change
    their meaning, so they are not candidates.
    """
    if isinstance(ctype, PointerType):
        element = ctype.pointee
    elif isinstance(ctype, ArrayType):
        element = ctype.element
    else:
        return False
    return element.is_char and getattr(element, "signed", True)


def _is_null(expr: ast.Node) -> bool:
    expr_inner = expr
    while isinstance(expr_inner, ast.Cast):
        expr_inner = expr_inner.operand
    return isinstance(expr_inner, ast.IntLiteral) and expr_inner.value == 0


def _strip_casts(expr: ast.Node) -> ast.Node:
    while isinstance(expr, ast.Cast):
        expr = expr.operand
    return expr


def apply_str(text: str, filename: str = "<unit>"):
    """Convenience: run STR over all local char buffers in ``text``."""
    return SafeTypeReplacement(text, filename).run()
