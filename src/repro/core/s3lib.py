"""S3Library-style signature-preserving safer-library replacement.

Sun et al.'s S3Library keeps the *call shape* of the unsafe functions:
``s3_strcpy(dest, src)`` has ``strcpy``'s exact signature and return
value, and learns the destination's real capacity from interposed
allocation bookkeeping instead of an extra size parameter.  Under our
VM the allocation metadata is already there (every block knows its
size — see :meth:`repro.vm.memory.Memory.block_of`), so the transform
itself is a pure rename plus injected prototypes.

That makes this backend's applicability nearly universal: SLR's
dominant failure class — Algorithm 1 cannot establish the destination
buffer's length (``unknown-length`` / aliased / function-pointer
destinations) — simply does not arise, because no length expression is
ever inserted.  The trade-off is link-time: a real build needs the
S3Library runtime, where SLR only needs glib.  Arbitration weighs the
two per file with the differential oracle.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from .transform import (
    PRECONDITION_FAILED, SiteOutcome, TRANSFORMED, Transformation,
)

#: Table I, reinterpreted S3Library-style: same shapes, safe bodies.
S3_ALTERNATIVES: dict[str, str] = {
    "strcpy": "s3_strcpy",
    "strcat": "s3_strcat",
    "sprintf": "s3_sprintf",
    "vsprintf": "s3_vsprintf",
    "gets": "s3_gets",
    "memcpy": "s3_memcpy",
}

#: Expected argument counts (min, exact?) per unsafe function — the one
#: precondition this backend keeps.
_ARITY: dict[str, tuple[int, bool]] = {
    "strcpy": (2, True),
    "strcat": (2, True),
    "sprintf": (2, False),      # variadic tail
    "vsprintf": (3, True),
    "gets": (1, True),
    "memcpy": (3, True),
}

#: Prototypes injected when the program does not already declare the
#: wrappers — signature-compatible with the functions they replace.
_S3_DECLARATIONS: dict[str, str] = {
    "s3_strcpy": "char *s3_strcpy(char *dest, const char *src);",
    "s3_strcat": "char *s3_strcat(char *dest, const char *src);",
    "s3_sprintf": "int s3_sprintf(char *dest, const char *format, ...);",
    "s3_vsprintf": "int s3_vsprintf(char *dest, const char *format, "
                   "__builtin_va_list args);",
    "s3_gets": "char *s3_gets(char *dest);",
    "s3_memcpy": "void *s3_memcpy(void *dest, const void *src, "
                 "unsigned long n);",
}


class S3LibraryReplacement(Transformation):
    """Rename unsafe calls to their ``s3_*`` signature-preserving
    wrappers; no size argument is computed or inserted."""

    name = "S3LIB"

    def __init__(self, text: str, filename: str = "<unit>", **kwargs):
        super().__init__(text, filename, **kwargs)
        self._needed_decls: set[str] = set()

    def find_targets(self) -> list[ast.Call]:
        targets = []
        for fn in self.unit.functions():
            for node in fn.body.walk():
                if isinstance(node, ast.Call) and \
                        node.callee_name in S3_ALTERNATIVES:
                    targets.append(node)
        targets.sort(key=lambda c: c.extent.start, reverse=True)
        return targets

    def apply_to(self, call: ast.Call) -> SiteOutcome:
        callee = call.callee_name or "<indirect>"
        base = dict(transformation=self.name, target=callee,
                    function=self.function_of(call),
                    line=self.line_of(call))
        new_name = S3_ALTERNATIVES.get(callee)
        if new_name is None:
            return SiteOutcome(**base, status=PRECONDITION_FAILED,
                               reason="not-unsafe-function",
                               detail=f"{callee} is not handled by s3lib")
        expected, exact = _ARITY[callee]
        if (len(call.args) != expected if exact
                else len(call.args) < expected):
            return SiteOutcome(**base, status=PRECONDITION_FAILED,
                               reason="bad-arity",
                               detail=f"{callee} call with "
                                      f"{len(call.args)} arguments")
        self.rewriter.replace(call.func.extent, new_name)
        self._needed_decls.add(new_name)
        return SiteOutcome(**base, status=TRANSFORMED)

    def finalize(self) -> None:
        from .slr import _already_declared
        decls = [
            _S3_DECLARATIONS[name]
            for name in sorted(self._needed_decls)
            if not _already_declared(self.text, name)
        ]
        if decls:
            self.rewriter.insert_before(
                0, "/* Declarations added by S3LIBRARY REPLACEMENT "
                   "(link with -ls3lib). */\n" + "\n".join(decls)
                   + "\n\n")


def apply_s3lib(text: str, filename: str = "<unit>"):
    """Convenience: rename all unsafe calls in ``text`` to s3lib."""
    return S3LibraryReplacement(text, filename).run()
