"""Persistent, content-addressed artifact store for the pipeline.

The in-memory LRUs in :mod:`repro.cfront.cache` die with the process and
are never shared between fork-pool workers or successive CLI runs, yet
everything the pipeline computes — preprocess outputs, annotated parse
results, SLR/STR transform outputs, differential-oracle verdicts and VM
execution results — is a pure function of (input content, tool version).
This module persists those artifacts on disk so that every process that
ever sees the same content gets them for one ``open`` + ``unpickle``:

* **layout** — ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``) holds one
  version directory per (schema, tool fingerprint); inside it, one
  subdirectory per artifact family (``preprocess``, ``parse``, ``slr``,
  ``str``, ``validate``, ``execute``), fanned out by key prefix.  A code
  change anywhere in the package changes the fingerprint
  (:func:`repro.fingerprint.tool_fingerprint`), so entries computed by an
  older checkout are never consulted; ``repro cache gc`` reclaims them.
* **crash-safe concurrent access** — writers pickle to a uniquely named
  temp file in the same directory and publish with :func:`os.replace`
  (atomic rename).  Racing writers both publish complete entries (last
  wins, values are equal by construction); readers can never observe a
  half-written entry.  A corrupt or unreadable entry is treated as a
  miss and dropped, never an error.
* **layering** — :class:`~repro.cfront.cache.ContentCache` consults this
  store between its memory LRU and the compute function (memory → disk →
  compute), so the hot path is unchanged and the disk layer is invisible
  to callers.

Environment knobs:

* ``REPRO_CACHE_DIR``    — store location (default ``~/.cache/repro``);
* ``REPRO_DISK_CACHE=0`` — disable the disk layer only (memory LRUs
  stay on); the CLI's ``--no-disk-cache`` sets this;
* ``REPRO_CACHE=0``      — disable *all* caching, disk included.
"""

from __future__ import annotations

import atexit
import io
import json
import os
import pickle
import shutil
import time
import uuid
import warnings

from ..cfront.cache import caches_enabled
from ..fingerprint import tool_fingerprint
from . import faults

#: Bumped when the pickled artifact schema changes incompatibly in a way
#: the source fingerprint would not capture (e.g. a pickling protocol
#: policy change).
SCHEMA_VERSION = 1

#: Artifact families the pipeline persists.  ``site`` holds the
#: single-site candidate texts site-mode arbitration composes from,
#: keyed per (backend, site identity, input text).  ``func`` holds
#: function-granular incremental artifacts — per-component preprocessed
#: renders and transform outcomes keyed on (stage, function token hash,
#: headers/preamble fingerprint) — so an unchanged function hits disk
#: across edits even though the whole-file keys all miss.
FAMILIES = ("preprocess", "parse", "slr", "str", "backend", "site",
            "validate", "execute", "func")

#: Abandoned temp files older than this are garbage (a crashed writer);
#: live writers hold a temp file for milliseconds.
TMP_MAX_AGE_S = 300.0


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") \
        or os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def disk_enabled() -> bool:
    """Is the disk layer active?  ``REPRO_CACHE=0`` (all caching off)
    and ``REPRO_DISK_CACHE=0`` (disk layer only) both disable it."""
    return caches_enabled() \
        and os.environ.get("REPRO_DISK_CACHE", "1") != "0"


class ArtifactStore:
    """One on-disk artifact store rooted at a cache directory.

    All methods are best-effort and exception-free: any I/O or pickle
    failure degrades to a cache miss (load) or a no-op (store) — the
    pipeline must never fail because a cache directory is unwritable,
    full, or holds garbage.
    """

    def __init__(self, root: str | None = None, *,
                 fingerprint: str | None = None):
        self.root = os.path.abspath(root if root is not None
                                    else default_cache_dir())
        self.fingerprint = fingerprint if fingerprint is not None \
            else tool_fingerprint()
        self.version_dir = os.path.join(
            self.root, f"v{SCHEMA_VERSION}-{self.fingerprint}")
        #: Live per-family counters for *this* process.
        self.counters: dict[str, dict[str, int]] = {}
        self._counter_token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._flush_registered = False
        #: Operations that already warned (one warning per operation per
        #: process — a read-only or full cache dir degrades every call).
        self._warned: set[str] = set()

    def _warn_once(self, operation: str, exc: OSError) -> None:
        """Surface a degraded store once per operation per process.

        A missing entry is the normal miss path and never warns; a
        *permission* or *disk* error means every access will degrade, so
        the user should hear about it — exactly once, not per entry.
        """
        if operation in self._warned:
            return
        self._warned.add(operation)
        warnings.warn(
            f"artifact store {operation} failed under {self.root} "
            f"({type(exc).__name__}: {exc}); continuing without the "
            f"disk cache for affected entries", RuntimeWarning,
            stacklevel=3)

    # ------------------------------------------------------------- paths

    def _entry_path(self, family: str, key: str) -> str:
        return os.path.join(self.version_dir, family, key[:2],
                            key + ".pkl")

    def _family_counter(self, family: str) -> dict[str, int]:
        counter = self.counters.get(family)
        if counter is None:
            counter = {"hits": 0, "misses": 0,
                       "bytes_read": 0, "bytes_written": 0}
            self.counters[family] = counter
        return counter

    # ------------------------------------------------------------ access

    def load(self, family: str, key: str) -> tuple[bool, object, int]:
        """Fetch one artifact; returns ``(hit, value, bytes_read)``.

        Anything unreadable — missing entry, truncated pickle, an entry
        whose class layout changed under a stale fingerprint override —
        is a miss; corrupt files are unlinked so they are rebuilt once.
        """
        counter = self._family_counter(family)
        self._register_flush()
        path = self._entry_path(family, key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            counter["misses"] += 1
            return False, None, 0
        except OSError as exc:
            self._warn_once("read", exc)
            counter["misses"] += 1
            return False, None, 0
        if faults.faults_enabled():
            data = faults.corrupt_entry(key, data)
        try:
            value = pickle.loads(data)
        except Exception:
            counter["misses"] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return False, None, 0
        counter["hits"] += 1
        counter["bytes_read"] += len(data)
        return True, value, len(data)

    def store(self, family: str, key: str, value: object) -> int:
        """Publish one artifact atomically; returns bytes written (0 if
        the value could not be pickled or the directory is unwritable).

        Write-to-temp + :func:`os.replace` keeps concurrent publishers
        safe: a reader sees either no entry or a complete one, never a
        partial write, whichever of two racing writers wins.
        """
        try:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return 0
        path = self._entry_path(family, key)
        directory = os.path.dirname(path)
        tmp = os.path.join(
            directory,
            f".{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            os.makedirs(directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError as exc:
            self._warn_once("write", exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return 0
        counter = self._family_counter(family)
        counter["bytes_written"] += len(data)
        self._register_flush()
        return len(data)

    # ----------------------------------------------------------- summary

    def usage(self) -> dict[str, dict[str, int]]:
        """Per-family ``{entries, bytes}`` for the current version dir."""
        out: dict[str, dict[str, int]] = {}
        for family in FAMILIES:
            family_dir = os.path.join(self.version_dir, family)
            entries = 0
            nbytes = 0
            for dirpath, _dirnames, filenames in os.walk(family_dir):
                for filename in filenames:
                    if not filename.endswith(".pkl"):
                        continue
                    entries += 1
                    try:
                        nbytes += os.path.getsize(
                            os.path.join(dirpath, filename))
                    except OSError:
                        pass
            if entries:
                out[family] = {"entries": entries, "bytes": nbytes}
        return out

    def stale_versions(self) -> list[str]:
        """Version directories built by other fingerprints/schemas."""
        current = os.path.basename(self.version_dir)
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [os.path.join(self.root, name) for name in names
                if name.startswith("v") and name != current
                and os.path.isdir(os.path.join(self.root, name))]

    # -------------------------------------------------------- management

    def clear(self) -> tuple[int, int]:
        """Remove every entry (all versions); returns (files, bytes)."""
        files = 0
        nbytes = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0, 0
        for name in names:
            full = os.path.join(self.root, name)
            if not os.path.isdir(full):
                continue
            for dirpath, _dirnames, filenames in os.walk(full):
                for filename in filenames:
                    files += 1
                    try:
                        nbytes += os.path.getsize(
                            os.path.join(dirpath, filename))
                    except OSError:
                        pass
            shutil.rmtree(full, ignore_errors=True)
        return files, nbytes

    def gc(self, *, max_age_s: float | None = None,
           tmp_max_age_s: float = TMP_MAX_AGE_S) -> dict[str, int]:
        """Reclaim garbage; safe to run concurrently with live writers.

        Removes: version directories for other tool fingerprints (their
        entries can never be consulted again), abandoned ``.tmp`` files
        older than ``tmp_max_age_s``, and — when ``max_age_s`` is given —
        entries whose mtime is older than that.
        """
        removed_files = 0
        freed_bytes = 0
        stale = self.stale_versions()
        for version_dir in stale:
            for dirpath, _dirnames, filenames in os.walk(version_dir):
                for filename in filenames:
                    removed_files += 1
                    try:
                        freed_bytes += os.path.getsize(
                            os.path.join(dirpath, filename))
                    except OSError:
                        pass
            shutil.rmtree(version_dir, ignore_errors=True)
        now = time.time()
        for dirpath, _dirnames, filenames in os.walk(self.version_dir):
            for filename in filenames:
                full = os.path.join(dirpath, filename)
                try:
                    mtime = os.path.getmtime(full)
                    size = os.path.getsize(full)
                except OSError:
                    continue
                is_tmp = filename.endswith(".tmp")
                expired = (is_tmp and now - mtime >= tmp_max_age_s) or \
                    (not is_tmp and filename.endswith(".pkl")
                     and max_age_s is not None
                     and now - mtime >= max_age_s)
                if not expired:
                    continue
                try:
                    os.unlink(full)
                except OSError:
                    continue
                removed_files += 1
                freed_bytes += size
        return {"removed_files": removed_files,
                "freed_bytes": freed_bytes,
                "removed_versions": len(stale)}

    # ---------------------------------------------------------- counters

    def _register_flush(self) -> None:
        if not self._flush_registered:
            self._flush_registered = True
            atexit.register(self.flush_counters)

    def flush_counters(self) -> None:
        """Persist this process's lifetime hit/miss/bytes counters.

        Each process owns one uniquely named counter file and rewrites
        it atomically with cumulative totals, so concurrent runs never
        contend and ``repro cache stats`` in a *later* process can still
        report what warm runs achieved.
        """
        if not any(any(c.values()) for c in self.counters.values()):
            return
        directory = os.path.join(self.version_dir, "counters")
        path = os.path.join(directory, self._counter_token + ".json")
        tmp = path + ".tmp"
        try:
            os.makedirs(directory, exist_ok=True)
            with io.open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self.counters, handle)
            os.replace(tmp, path)
        except OSError as exc:
            self._warn_once("counter-flush", exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def persisted_counters(self) -> dict[str, dict[str, int]]:
        """Lifetime counters merged over every recorded process,
        including this one's live (not yet flushed) numbers."""
        merged: dict[str, dict[str, int]] = {}

        def add(families: dict) -> None:
            for family, counter in families.items():
                into = merged.setdefault(
                    family, {"hits": 0, "misses": 0,
                             "bytes_read": 0, "bytes_written": 0})
                for field in into:
                    try:
                        into[field] += int(counter.get(field, 0))
                    except (TypeError, ValueError):
                        pass

        directory = os.path.join(self.version_dir, "counters")
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json") \
                    or name == self._counter_token + ".json":
                continue
            try:
                with io.open(os.path.join(directory, name),
                             encoding="utf-8") as handle:
                    add(json.load(handle))
            except (OSError, ValueError):
                continue
        add(self.counters)
        return merged


# ---------------------------------------------------------- default store

_STORE: ArtifactStore | None = None


def get_store() -> ArtifactStore:
    """The process-wide store (created from the environment on first
    use; fork-pool workers inherit the parent's instance)."""
    global _STORE
    if _STORE is None:
        _STORE = ArtifactStore()
    return _STORE


def reset_store() -> ArtifactStore:
    """Rebuild the default store from the current environment (tests
    monkeypatch ``REPRO_CACHE_DIR``/``REPRO_FINGERPRINT`` then reset)."""
    global _STORE
    if _STORE is not None:
        _STORE.flush_counters()
    _STORE = ArtifactStore()
    return _STORE
