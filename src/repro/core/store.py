"""Persistent, content-addressed artifact store for the pipeline.

The in-memory LRUs in :mod:`repro.cfront.cache` die with the process and
are never shared between fork-pool workers or successive CLI runs, yet
everything the pipeline computes — preprocess outputs, annotated parse
results, SLR/STR transform outputs, differential-oracle verdicts and VM
execution results — is a pure function of (input content, tool version).
This module persists those artifacts on disk so that every process that
ever sees the same content gets them for one ``open`` + ``unpickle``:

* **layout** — ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``) holds one
  version directory per (schema, tool fingerprint); inside it, one
  subdirectory per artifact family (``preprocess``, ``parse``, ``slr``,
  ``str``, ``validate``, ``execute``), *sharded* by key prefix into
  ``REPRO_STORE_SHARDS`` subdirectories (``s000`` … ``sNNN``).  Sharding
  spreads parallel workers — and future service replicas sharing one
  artifact namespace — over N directories per family instead of
  contending on one, and gives ``repro cache stats`` a per-shard view of
  where writes land.  Entries published by older checkouts under the
  pre-shard flat layout (``family/<key prefix>/key.pkl``) are still
  found by read-through and migrated to their shard on first hit.  A
  code change anywhere in the package changes the fingerprint
  (:func:`repro.fingerprint.tool_fingerprint`), so entries computed by
  an older checkout are never consulted; ``repro cache gc`` reclaims
  them.
* **crash-safe concurrent access** — writers pickle to a uniquely named
  temp file in the same directory and publish with :func:`os.replace`
  (atomic rename).  Racing writers both publish complete entries (last
  wins, values are equal by construction); readers can never observe a
  half-written entry.  A corrupt or unreadable entry is treated as a
  miss and dropped, never an error.
* **layering** — :class:`~repro.cfront.cache.ContentCache` consults this
  store between its memory LRU and the compute function (memory → disk →
  compute), so the hot path is unchanged and the disk layer is invisible
  to callers.

Environment knobs:

* ``REPRO_CACHE_DIR``     — store location (default ``~/.cache/repro``);
* ``REPRO_STORE_SHARDS``  — shard directories per family (default 16);
* ``REPRO_DISK_CACHE=0``  — disable the disk layer only (memory LRUs
  stay on); the CLI's ``--no-disk-cache`` sets this;
* ``REPRO_CACHE=0``       — disable *all* caching, disk included.
"""

from __future__ import annotations

import atexit
import errno
import io
import json
import os
import pickle
import shutil
import time
import uuid
import warnings
import zlib

from ..cfront.cache import caches_enabled
from ..fingerprint import tool_fingerprint
from . import faults

#: Bumped when the pickled artifact schema changes incompatibly in a way
#: the source fingerprint would not capture (e.g. a pickling protocol
#: policy change).
SCHEMA_VERSION = 1

#: Artifact families the pipeline persists.  ``site`` holds the
#: single-site candidate texts site-mode arbitration composes from,
#: keyed per (backend, site identity, input text).  ``func`` holds
#: function-granular incremental artifacts — per-component preprocessed
#: renders and transform outcomes keyed on (stage, function token hash,
#: headers/preamble fingerprint) — so an unchanged function hits disk
#: across edits even though the whole-file keys all miss.
#: ``quarantine`` holds poison-file records (content hash → diagnostic)
#: written by journaled batch runs — the fingerprint-salted version dir
#: means a tool change releases every quarantined file automatically.
FAMILIES = ("preprocess", "parse", "slr", "str", "backend", "site",
            "validate", "execute", "func", "quarantine")

#: Abandoned temp files older than this are garbage (a crashed writer);
#: live writers hold a temp file for milliseconds.
TMP_MAX_AGE_S = 300.0

#: Default shard directories per family.  16 keeps directory entry
#: counts (and rename contention domains) 16x smaller than one flat
#: fan-in while staying negligible as directory overhead.
DEFAULT_STORE_SHARDS = 16

#: The counter fields every per-family / per-shard tally carries.
#: ``migrated`` counts flat-layout entries rehomed to their shard by
#: read-through.
COUNTER_FIELDS = ("hits", "misses", "bytes_read", "bytes_written",
                  "migrated")


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") \
        or os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def store_shards() -> int:
    """Shard count from ``REPRO_STORE_SHARDS`` (default 16, min 1)."""
    from .envknobs import int_knob
    return int_knob("REPRO_STORE_SHARDS", DEFAULT_STORE_SHARDS)


def disk_enabled() -> bool:
    """Is the disk layer active?  ``REPRO_CACHE=0`` (all caching off)
    and ``REPRO_DISK_CACHE=0`` (disk layer only) both disable it."""
    return caches_enabled() \
        and os.environ.get("REPRO_DISK_CACHE", "1") != "0"


def _empty_counter() -> dict[str, int]:
    return {field: 0 for field in COUNTER_FIELDS}


class ArtifactStore:
    """One on-disk artifact store rooted at a cache directory.

    All methods are best-effort and exception-free: any I/O or pickle
    failure degrades to a cache miss (load) or a no-op (store) — the
    pipeline must never fail because a cache directory is unwritable,
    full, or holds garbage.
    """

    def __init__(self, root: str | None = None, *,
                 fingerprint: str | None = None,
                 shards: int | None = None):
        self.root = os.path.abspath(root if root is not None
                                    else default_cache_dir())
        self.fingerprint = fingerprint if fingerprint is not None \
            else tool_fingerprint()
        self.shards = max(1, shards if shards is not None
                          else store_shards())
        self.version_dir = os.path.join(
            self.root, f"v{SCHEMA_VERSION}-{self.fingerprint}")
        #: Live per-family counters for *this* process.
        self.counters: dict[str, dict[str, int]] = {}
        #: Live per-family, per-shard counters (family -> shard label).
        self.shard_counters: dict[str, dict[str, dict[str, int]]] = {}
        self._counter_token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._flush_registered = False
        #: Operations that already warned (one warning per operation per
        #: process — a read-only or full cache dir degrades every call).
        self._warned: set[str] = set()

    def _warn_once(self, operation: str, exc: OSError) -> None:
        """Surface a degraded store once per operation per process.

        A missing entry is the normal miss path and never warns; a
        *permission* or *disk* error means every access will degrade, so
        the user should hear about it — exactly once, not per entry.
        """
        if operation in self._warned:
            return
        self._warned.add(operation)
        warnings.warn(
            f"artifact store {operation} failed under {self.root} "
            f"({type(exc).__name__}: {exc}); continuing without the "
            f"disk cache for affected entries", RuntimeWarning,
            stacklevel=3)

    # ------------------------------------------------------------- paths

    def shard_label(self, key: str) -> str:
        """The shard directory a key lives in, from its prefix.

        CRC over the first 8 characters keeps the mapping cheap, stable
        across processes and Python versions, and purely prefix-driven —
        two replicas with the same shard count always agree on where an
        entry belongs.
        """
        prefix = key[:8].encode("utf-8", errors="surrogateescape")
        return f"s{zlib.crc32(prefix) % self.shards:03d}"

    def _entry_path(self, family: str, key: str) -> str:
        return os.path.join(self.version_dir, family,
                            self.shard_label(key), key + ".pkl")

    def _legacy_entry_path(self, family: str, key: str) -> str:
        """Where the pre-shard flat layout kept this entry."""
        return os.path.join(self.version_dir, family, key[:2],
                            key + ".pkl")

    def _family_counter(self, family: str) -> dict[str, int]:
        counter = self.counters.get(family)
        if counter is None:
            counter = _empty_counter()
            self.counters[family] = counter
        return counter

    def _shard_counter(self, family: str, key: str) -> dict[str, int]:
        shards = self.shard_counters.setdefault(family, {})
        label = self.shard_label(key)
        counter = shards.get(label)
        if counter is None:
            counter = _empty_counter()
            shards[label] = counter
        return counter

    # ------------------------------------------------------------ access

    def load(self, family: str, key: str) -> tuple[bool, object, int]:
        """Fetch one artifact; returns ``(hit, value, bytes_read)``.

        Anything unreadable — missing entry, truncated pickle, an entry
        whose class layout changed under a stale fingerprint override —
        is a miss; corrupt files are unlinked so they are rebuilt once.
        A sharded-path miss falls through to the pre-shard flat layout,
        and a flat hit is migrated to its shard so the next reader pays
        one ``open``.
        """
        counter = self._family_counter(family)
        shard = self._shard_counter(family, key)
        self._register_flush()
        path = self._entry_path(family, key)
        legacy = False
        data = None
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            data = None
        except OSError as exc:
            self._warn_once("read", exc)
            counter["misses"] += 1
            shard["misses"] += 1
            return False, None, 0
        if data is None:
            legacy_path = self._legacy_entry_path(family, key)
            try:
                with open(legacy_path, "rb") as handle:
                    data = handle.read()
                legacy = True
            except FileNotFoundError:
                counter["misses"] += 1
                shard["misses"] += 1
                return False, None, 0
            except OSError as exc:
                self._warn_once("read", exc)
                counter["misses"] += 1
                shard["misses"] += 1
                return False, None, 0
        if faults.faults_enabled():
            data = faults.corrupt_entry(key, data)
        try:
            value = pickle.loads(data)
        except Exception:
            counter["misses"] += 1
            shard["misses"] += 1
            try:
                os.unlink(legacy_path if legacy else path)
            except OSError:
                pass
            return False, None, 0
        if legacy:
            self._migrate_legacy(family, key, path, data)
        counter["hits"] += 1
        counter["bytes_read"] += len(data)
        shard["hits"] += 1
        shard["bytes_read"] += len(data)
        return True, value, len(data)

    def _migrate_legacy(self, family: str, key: str, path: str,
                        data: bytes) -> None:
        """Rehome a flat-layout entry under its shard (best-effort).

        Publishing first and unlinking second keeps racing readers safe:
        both paths hold a complete entry throughout, and a concurrent
        migration losing the unlink race is a no-op (ENOENT tolerated).
        """
        if not self._publish(path, data):
            return
        try:
            os.unlink(self._legacy_entry_path(family, key))
        except OSError:
            pass
        self._family_counter(family)["migrated"] += 1
        self._shard_counter(family, key)["migrated"] += 1

    def _publish(self, path: str, data: bytes) -> bool:
        """Atomically write ``data`` at ``path`` (tmp + rename)."""
        directory = os.path.dirname(path)
        tmp = os.path.join(
            directory,
            f".{os.path.basename(path)[:-4]}."
            f"{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            if faults.faults_enabled() and faults.should_fail_disk(
                    "store", os.path.basename(path)):
                raise OSError(errno.ENOSPC,
                              f"injected disk-full for {path}")
            os.makedirs(directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError as exc:
            self._warn_once("write", exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def store(self, family: str, key: str, value: object) -> int:
        """Publish one artifact atomically; returns bytes written (0 if
        the value could not be pickled or the directory is unwritable).

        Write-to-temp + :func:`os.replace` keeps concurrent publishers
        safe: a reader sees either no entry or a complete one, never a
        partial write, whichever of two racing writers wins.
        """
        try:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return 0
        if not self._publish(self._entry_path(family, key), data):
            return 0
        self._family_counter(family)["bytes_written"] += len(data)
        self._shard_counter(family, key)["bytes_written"] += len(data)
        self._register_flush()
        return len(data)

    # ----------------------------------------------------------- summary

    def usage(self) -> dict[str, dict[str, int]]:
        """Per-family ``{entries, bytes}`` for the current version dir."""
        out: dict[str, dict[str, int]] = {}
        for family in FAMILIES:
            family_dir = os.path.join(self.version_dir, family)
            entries = 0
            nbytes = 0
            for dirpath, _dirnames, filenames in os.walk(family_dir):
                for filename in filenames:
                    if not filename.endswith(".pkl"):
                        continue
                    entries += 1
                    try:
                        nbytes += os.path.getsize(
                            os.path.join(dirpath, filename))
                    except OSError:
                        pass
            if entries:
                out[family] = {"entries": entries, "bytes": nbytes}
        return out

    def shard_usage(self) -> dict[str, dict[str, dict[str, int]]]:
        """Per-family, per-shard-directory ``{entries, bytes}``.

        Legacy flat-layout prefix directories show up under their own
        two-character names, so unmigrated residue is visible next to
        the ``sNNN`` shards it will move into.
        """
        out: dict[str, dict[str, dict[str, int]]] = {}
        for family in FAMILIES:
            family_dir = os.path.join(self.version_dir, family)
            try:
                subdirs = sorted(os.listdir(family_dir))
            except OSError:
                continue
            shards: dict[str, dict[str, int]] = {}
            for sub in subdirs:
                full = os.path.join(family_dir, sub)
                if not os.path.isdir(full):
                    continue
                entries = 0
                nbytes = 0
                try:
                    names = os.listdir(full)
                except OSError:
                    continue
                for name in names:
                    if not name.endswith(".pkl"):
                        continue
                    entries += 1
                    try:
                        nbytes += os.path.getsize(
                            os.path.join(full, name))
                    except OSError:
                        pass
                if entries:
                    shards[sub] = {"entries": entries, "bytes": nbytes}
            if shards:
                out[family] = shards
        return out

    def stale_versions(self) -> list[str]:
        """Version directories built by other fingerprints/schemas."""
        current = os.path.basename(self.version_dir)
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [os.path.join(self.root, name) for name in names
                if name.startswith("v") and name != current
                and os.path.isdir(os.path.join(self.root, name))]

    # -------------------------------------------------------- management

    def clear(self) -> tuple[int, int]:
        """Remove every entry (all versions); returns (files, bytes).

        Tolerates a concurrent clear/gc: entries that vanish between
        the walk and the removal are simply not double-counted.
        """
        files = 0
        nbytes = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0, 0
        for name in names:
            full = os.path.join(self.root, name)
            if not os.path.isdir(full):
                continue
            for dirpath, _dirnames, filenames in os.walk(full):
                for filename in filenames:
                    try:
                        nbytes += os.path.getsize(
                            os.path.join(dirpath, filename))
                    except OSError:
                        continue
                    files += 1
            shutil.rmtree(full, ignore_errors=True)
        return files, nbytes

    def gc(self, *, max_age_s: float | None = None,
           tmp_max_age_s: float = TMP_MAX_AGE_S) -> dict[str, int]:
        """Reclaim garbage; safe to run concurrently with live writers
        *and* with another gc (ENOENT on an already-removed entry or
        directory is tolerated everywhere).

        Removes: version directories for other tool fingerprints (their
        entries can never be consulted again), abandoned ``.tmp`` files
        older than ``tmp_max_age_s``, entries whose mtime is older than
        ``max_age_s`` (when given), and any family/shard directories
        left empty afterwards.
        """
        removed_files = 0
        freed_bytes = 0
        stale = self.stale_versions()
        removed_versions = 0
        for version_dir in stale:
            for dirpath, _dirnames, filenames in os.walk(version_dir):
                for filename in filenames:
                    try:
                        freed_bytes += os.path.getsize(
                            os.path.join(dirpath, filename))
                    except OSError:
                        continue
                    removed_files += 1
            shutil.rmtree(version_dir, ignore_errors=True)
            removed_versions += 1
        now = time.time()
        for dirpath, _dirnames, filenames in os.walk(self.version_dir):
            for filename in filenames:
                full = os.path.join(dirpath, filename)
                try:
                    mtime = os.path.getmtime(full)
                    size = os.path.getsize(full)
                except OSError:
                    continue
                is_tmp = filename.endswith(".tmp")
                expired = (is_tmp and now - mtime >= tmp_max_age_s) or \
                    (not is_tmp and filename.endswith(".pkl")
                     and max_age_s is not None
                     and now - mtime >= max_age_s)
                if not expired:
                    continue
                try:
                    os.unlink(full)
                except OSError:
                    # A racing gc already removed it; its count, not ours.
                    continue
                removed_files += 1
                freed_bytes += size
        return {"removed_files": removed_files,
                "freed_bytes": freed_bytes,
                "removed_versions": removed_versions,
                "removed_dirs": self._prune_empty_dirs()}

    def _prune_empty_dirs(self) -> int:
        """Remove empty family/shard/counter directories bottom-up.

        ``os.rmdir`` is the race-safety here: it only ever removes an
        *empty* directory and fails cleanly (ENOTEMPTY/ENOENT ignored)
        if a concurrent writer repopulated or a concurrent gc already
        pruned it.
        """
        removed = 0
        for dirpath, _dirnames, _filenames in os.walk(
                self.version_dir, topdown=False):
            if dirpath == self.version_dir:
                continue
            try:
                os.rmdir(dirpath)
            except OSError:
                continue
            removed += 1
        return removed

    # ---------------------------------------------------------- counters

    def _register_flush(self) -> None:
        if not self._flush_registered:
            self._flush_registered = True
            atexit.register(self.flush_counters)

    def flush_counters(self) -> None:
        """Persist this process's lifetime hit/miss/bytes counters.

        Each process owns one uniquely named counter file and rewrites
        it atomically with cumulative totals — per family and per shard
        — so concurrent runs never contend on a shared counter file and
        ``repro cache stats`` in a *later* process can still report what
        warm runs achieved.
        """
        if not any(any(c.values()) for c in self.counters.values()):
            return
        directory = os.path.join(self.version_dir, "counters")
        path = os.path.join(directory, self._counter_token + ".json")
        tmp = path + ".tmp"
        payload = {"families": self.counters,
                   "shards": self.shard_counters}
        try:
            os.makedirs(directory, exist_ok=True)
            with io.open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError as exc:
            self._warn_once("counter-flush", exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _each_counter_file(self):
        """Yield every *other* process's parsed counter payload."""
        directory = os.path.join(self.version_dir, "counters")
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json") \
                    or name == self._counter_token + ".json":
                continue
            try:
                with io.open(os.path.join(directory, name),
                             encoding="utf-8") as handle:
                    yield json.load(handle)
            except (OSError, ValueError):
                continue

    @staticmethod
    def _merge_counters(into: dict, families: dict) -> None:
        for family, counter in families.items():
            if not isinstance(counter, dict):
                continue
            target = into.setdefault(family, _empty_counter())
            for field in target:
                try:
                    target[field] += int(counter.get(field, 0))
                except (TypeError, ValueError):
                    pass

    def persisted_counters(self) -> dict[str, dict[str, int]]:
        """Lifetime per-family counters merged over every recorded
        process, including this one's live (not yet flushed) numbers.

        Counter files written before sharding (a plain family dict) are
        merged the same as the current ``{"families": …, "shards": …}``
        shape."""
        merged: dict[str, dict[str, int]] = {}
        for payload in self._each_counter_file():
            if not isinstance(payload, dict):
                continue
            families = payload.get("families", payload)
            if isinstance(families, dict):
                self._merge_counters(merged, families)
        self._merge_counters(merged, self.counters)
        return merged

    def persisted_shard_counters(self) \
            -> dict[str, dict[str, dict[str, int]]]:
        """Lifetime per-family, per-shard counters merged over every
        recorded process plus this one's live numbers."""
        merged: dict[str, dict[str, dict[str, int]]] = {}

        def add(shards: dict) -> None:
            if not isinstance(shards, dict):
                return
            for family, per_shard in shards.items():
                if not isinstance(per_shard, dict):
                    continue
                self._merge_counters(
                    merged.setdefault(family, {}), per_shard)

        for payload in self._each_counter_file():
            if isinstance(payload, dict):
                add(payload.get("shards", {}))
        add(self.shard_counters)
        return merged

    def contention_summary(self, shard_counters=None
                           ) -> dict[str, dict[str, int]]:
        """Per-family write-spread over shards, for bench reporting.

        ``shards_used`` over ``shards`` is the contention signal: a
        well-spread family keeps every parallel writer in its own
        rename domain; ``max_shard_writes`` close to ``bytes_written``
        means one shard is taking all the heat.  Defaults to this
        process's live counters; pass ``persisted_shard_counters()``
        for the lifetime view."""
        if shard_counters is None:
            shard_counters = self.shard_counters
        out: dict[str, dict[str, int]] = {}
        for family, per_shard in shard_counters.items():
            writes = {label: c.get("bytes_written", 0)
                      for label, c in per_shard.items()
                      if c.get("bytes_written", 0)}
            if not writes:
                continue
            out[family] = {
                "shards": self.shards,
                "shards_used": len(writes),
                "bytes_written": sum(writes.values()),
                "max_shard_bytes": max(writes.values()),
            }
        return out


# ---------------------------------------------------------- default store

_STORE: ArtifactStore | None = None


def get_store() -> ArtifactStore:
    """The process-wide store (created from the environment on first
    use; fork-pool workers inherit the parent's instance)."""
    global _STORE
    if _STORE is None:
        _STORE = ArtifactStore()
    return _STORE


def reset_store() -> ArtifactStore:
    """Rebuild the default store from the current environment (tests
    monkeypatch ``REPRO_CACHE_DIR``/``REPRO_FINGERPRINT`` then reset)."""
    global _STORE
    if _STORE is not None:
        _STORE.flush_counters()
    _STORE = ArtifactStore()
    return _STORE
