"""``repro watch`` — long-lived re-analysis loop over editing sessions.

Polls one file or every ``.c`` file under a directory for mtime
changes, debounces rapid saves (``REPRO_WATCH_DEBOUNCE`` seconds of
quiet before a change is processed), and pushes each settled edit
through one warm :class:`repro.core.incremental.IncrementalEngine` per
file — so an edit-to-verdict round trip touches only the functions the
edit changed.  Diagnostics stream one line per update (mode, wall time,
invalidated functions, verdicts), or machine-readable JSON records with
``--json``.

The loop is deterministic and testable: the clock, the sleep function,
and the output stream are injectable, and ``run(max_scans=N)`` /
``repro watch --once`` bound the polling loop.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field

from .envknobs import float_knob
from .incremental import IncrementalEngine, UpdateReport

__all__ = ["WatchLoop", "watch_debounce", "watch_interval"]

DEFAULT_DEBOUNCE_S = 0.2
DEFAULT_INTERVAL_S = 0.1


def watch_debounce() -> float:
    """Quiet period (seconds) a changed file must hold before it is
    re-analyzed (``REPRO_WATCH_DEBOUNCE``, default 0.2); rapid
    consecutive saves coalesce into one update."""
    return float_knob("REPRO_WATCH_DEBOUNCE", DEFAULT_DEBOUNCE_S)


def watch_interval() -> float:
    """Polling period in seconds (``REPRO_WATCH_INTERVAL``, default 0.1)."""
    return float_knob("REPRO_WATCH_INTERVAL", DEFAULT_INTERVAL_S)


@dataclass
class _WatchedFile:
    engine: IncrementalEngine
    mtime: float | None = None          # last processed mtime
    pending_mtime: float | None = None  # seen changed, not yet settled
    pending_since: float = 0.0


@dataclass
class WatchLoop:
    """Poll ``target`` (a ``.c`` file or a directory of them) and stream
    one :class:`UpdateReport` per settled edit."""

    target: str
    profile: str = "glib"
    validate: bool = True
    fuzz_seed: int | None = None
    json_output: bool = False
    debounce_s: float | None = None     # None = REPRO_WATCH_DEBOUNCE
    interval_s: float | None = None     # None = REPRO_WATCH_INTERVAL
    clock: object = time.monotonic
    sleep: object = time.sleep
    out: object = None                  # None = sys.stdout
    files: dict = field(default_factory=dict, init=False)   # path -> state

    def __post_init__(self):
        if self.debounce_s is None:
            self.debounce_s = watch_debounce()
        if self.interval_s is None:
            self.interval_s = watch_interval()

    # ------------------------------------------------------- discovery

    def watched_paths(self) -> list[str]:
        """Current watch set (rescanned every poll, so files created
        after startup are picked up)."""
        if os.path.isdir(self.target):
            found = []
            for dirpath, _dirnames, filenames in os.walk(self.target):
                found.extend(os.path.join(dirpath, name)
                             for name in filenames if name.endswith(".c"))
            return sorted(found)
        return [self.target]

    def _state(self, path: str) -> _WatchedFile:
        state = self.files.get(path)
        if state is None:
            state = _WatchedFile(IncrementalEngine(
                os.path.basename(path), profile=self.profile,
                validate=self.validate, fuzz_seed=self.fuzz_seed))
            self.files[path] = state
        return state

    # ------------------------------------------------------------ scan

    def scan_once(self, *, force: bool = False) -> list[UpdateReport]:
        """One poll: process every watched file whose mtime changed and
        has been quiet for the debounce period.  ``force`` processes
        everything immediately (startup / ``--once``)."""
        reports = []
        now = self.clock()
        paths = self.watched_paths()
        # Directory watch: a file deleted between polls silently drops
        # out of the rescan — sweep its state (and emit its removal
        # record) instead of holding a dead engine forever.
        watched = set(paths)
        for path in [p for p in self.files if p not in watched]:
            removed = self._handle_removed(path, self.files[path])
            if removed is not None:
                reports.append(removed)
        for path in paths:
            state = self._state(path)
            try:
                mtime = os.stat(path).st_mtime
            except OSError:
                removed = self._handle_removed(path, state)
                if removed is not None:
                    reports.append(removed)
                continue
            if not force:
                if mtime == state.mtime and state.pending_mtime is None:
                    continue
                if mtime != state.pending_mtime:
                    # New change: start (or restart) the quiet period.
                    state.pending_mtime = mtime
                    state.pending_since = now
                    continue
                if now - state.pending_since < self.debounce_s:
                    continue
            try:
                with open(path, encoding="utf-8", errors="replace") as fh:
                    text = fh.read()
            except OSError:
                # Deleted (or made unreadable) between the debounce
                # settling and the read — same removal handling as a
                # failed stat.
                removed = self._handle_removed(path, state)
                if removed is not None:
                    reports.append(removed)
                continue
            t0 = time.perf_counter()
            try:
                report = state.engine.update(text)
            except Exception as exc:
                # A file the pipeline cannot process at all (lex errors,
                # binary garbage) must not kill the loop — emit an error
                # record and keep watching everything else.
                report = UpdateReport(
                    os.path.basename(path), "error", repr(exc),
                    final_text=text, parses=False,
                    wall_s=time.perf_counter() - t0)
            state.mtime = mtime
            state.pending_mtime = None
            self._emit(path, report)
            reports.append(report)
        return reports

    def _handle_removed(self, path: str,
                        state: _WatchedFile) -> UpdateReport | None:
        """A watched file vanished (deleted between polls, or between
        the debounce settling and the re-read).  Treat it as a removal:
        drop its engine state so a recreated file starts a fresh
        session, and emit exactly one ``removed`` diagnostic — but only
        for files the loop had actually seen (a file that appears and
        disappears before its first read was never watched content).
        The loop itself keeps running either way."""
        self.files.pop(path, None)
        if state.mtime is None and state.pending_mtime is None:
            return None
        report = UpdateReport(os.path.basename(path), "removed",
                              "watched file deleted", final_text="",
                              parses=True)
        self._emit(path, report)
        return report

    def run(self, max_scans: int | None = None) -> int:
        """Poll until interrupted (or for ``max_scans`` polls).  The
        first scan processes every file; later scans only settled
        edits."""
        self.scan_once(force=True)
        scans = 0
        try:
            while max_scans is None or scans < max_scans:
                self.sleep(self.interval_s)
                self.scan_once()
                scans += 1
        except KeyboardInterrupt:
            pass
        return 0

    # ------------------------------------------------------ diagnostics

    def _emit(self, path: str, report: UpdateReport) -> None:
        out = self.out if self.out is not None else sys.stdout
        if self.json_output:
            record = {"path": path, **report.as_dict()}
            print(json.dumps(record, sort_keys=True), file=out, flush=True)
            return
        wall_ms = report.wall_s * 1000.0
        parts = [f"[watch] {path}", report.mode, f"{wall_ms:.0f}ms"]
        if report.reason:
            parts.append(f"({report.reason})")
        if report.invalidated:
            parts.append("invalidated=" + ",".join(sorted(report.invalidated)))
        if report.mode not in ("no-op", "removed"):
            parts.append(f"sites={len(report.slr_outcomes) + len(report.str_outcomes)}")
            parts.append("parses" if report.parses else "PARSE-ERROR")
        if report.validation is not None:
            summary = report.validation.summary() \
                if hasattr(report.validation, "summary") else ""
            if summary:
                parts.append(summary)
        if report.mode == "incremental":
            parts.append(f"func-cache {report.func_hits}h/"
                         f"{report.func_misses}m")
            parts.append(f"probes {report.probes_reused}r/"
                         f"{report.probes_executed}x")
        print(" ".join(parts), file=out, flush=True)
