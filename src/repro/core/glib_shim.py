"""A tiny C implementation of the glib safe-string functions SLR emits.

The real system links ``-lglib-2.0``; for compiling SLR-transformed output
on machines without glib (and for the native differential tests that pin
the VM to a real compiler), this shim provides the four functions with
the documented glib semantics — identical to the VM's native versions.
"""

GLIB_SHIM_C_SOURCE = r"""
#include <stdarg.h>
#include <stdio.h>
#include <string.h>

unsigned long g_strlcpy(char *dest, const char *src,
                        unsigned long dest_size)
{
    unsigned long n = strlen(src);
    if (dest_size > 0) {
        unsigned long k = n >= dest_size ? dest_size - 1 : n;
        memcpy(dest, src, k);
        dest[k] = 0;
    }
    return n;
}

unsigned long g_strlcat(char *dest, const char *src,
                        unsigned long dest_size)
{
    unsigned long old = strlen(dest);
    unsigned long n = strlen(src);
    unsigned long room;
    unsigned long k;
    if (old >= dest_size) {
        return dest_size + n;
    }
    room = dest_size - old - 1;
    k = n > room ? room : n;
    memcpy(dest + old, src, k);
    dest[old + k] = 0;
    return old + n;
}

int g_snprintf(char *string, unsigned long n, const char *format, ...)
{
    va_list ap;
    int written;
    va_start(ap, format);
    written = vsnprintf(string, n, format, ap);
    va_end(ap);
    return written;
}

int g_vsnprintf(char *string, unsigned long n, const char *format,
                va_list args)
{
    return vsnprintf(string, n, format, args);
}
"""
