"""Shared parsing for numeric ``REPRO_*`` environment knobs.

Every tuning knob follows the batch driver's bad-knob contract: a value
that does not parse (or is out of range) must never crash or silently
reconfigure a run — it warns once and falls back to the documented
default.  ``warnings.warn`` with a stable message deduplicates via the
interpreter's default warning filter, so a bad knob produces exactly one
line per process however many times the knob is read.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["int_knob", "float_knob"]


def _warn(message: str) -> None:
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def int_knob(name: str, default: int, *, minimum: int | None = 1,
             fallback_note: str = "") -> int:
    """Read an integer knob; warn and return ``default`` on bad values.

    ``minimum`` is the lowest accepted value (``None`` accepts any
    integer); ``fallback_note`` names what the fallback means in the
    warning (defaults to the numeric default itself).
    """
    raw = os.environ.get(name, "")
    if not raw:
        return default
    note = fallback_note or f"using default {default}"
    try:
        value = int(raw)
    except ValueError:
        _warn(f"ignoring non-integer {name}={raw!r}; {note}")
        return default
    if minimum is not None and value < minimum:
        _warn(f"ignoring {name}={value} (must be >= {minimum}); {note}")
        return default
    return value


def float_knob(name: str, default: float, *, minimum: float = 0.0,
               fallback_note: str = "") -> float:
    """Read a float knob; warn and return ``default`` on bad values."""
    raw = os.environ.get(name, "")
    if not raw:
        return default
    note = fallback_note or f"using default {default}"
    try:
        value = float(raw)
    except ValueError:
        _warn(f"ignoring non-numeric {name}={raw!r}; {note}")
        return default
    if value < minimum:
        _warn(f"ignoring {name}={value} (must be >= {minimum}); {note}")
        return default
    return value
