"""Stage-level profiler for the transformation pipeline.

BENCH numbers used to be a single opaque wall figure; this module breaks
a batch run down into per-file, per-stage timings — preprocess / parse /
analyze / slr / str / verify / validate — so cache wins and regressions
are attributable to a stage.

Instrumentation is collector-scoped and exclusive:

* the batch driver opens a :func:`collect` context per file; within it,
  pipeline code brackets work with :func:`stage`;
* nested stages subtract their wall time from the enclosing stage (the
  ``parse`` done inside an SLR run is charged to *parse*, not *slr*), so
  a file's stage times sum to its measured wall time;
* with no active collector, :func:`stage` is a no-op — library callers
  outside a batch pay one list check.

Fork-pool workers time their own stages and ship the per-file dict back
on the :class:`~repro.core.batch.FileTransformReport`, so the rendered
table is identical at any worker count.  ``repro batch --profile`` (or
``REPRO_PROFILE=1``) renders the breakdown.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

#: Render/report order for the pipeline stages.  ``analyze:*`` rows are
#: the lazily built analysis passes (charged when first queried, which
#: may be inside slr/str — the exclusive accounting attributes them to
#: the analysis, not the transformation that happened to trigger them).
STAGES = ("preprocess", "parse", "analyze", "analyze:cfg",
          "analyze:reaching", "analyze:pointsto", "analyze:alias",
          "analyze:dependence", "slr", "str", "verify", "validate")


def profiling_enabled() -> bool:
    """Should batch commands render the stage breakdown by default?"""
    return os.environ.get("REPRO_PROFILE", "0") not in ("0", "")


class _Collector:
    __slots__ = ("filename", "times", "frames")

    def __init__(self, filename: str):
        self.filename = filename
        self.times: dict[str, float] = {}
        self.frames: list[float] = []      # child wall time per open stage


_ACTIVE: list[_Collector] = []


@contextmanager
def collect(filename: str):
    """Collect stage timings for one file; yields the times dict."""
    collector = _Collector(filename)
    _ACTIVE.append(collector)
    try:
        yield collector.times
    finally:
        _ACTIVE.pop()


def record(stage_name: str, seconds: float) -> None:
    """Charge ``seconds`` to a stage of the innermost active collector."""
    if _ACTIVE:
        times = _ACTIVE[-1].times
        times[stage_name] = times.get(stage_name, 0.0) + seconds


@contextmanager
def stage(name: str):
    """Time a pipeline stage (exclusive of any nested stages)."""
    if not _ACTIVE:
        yield
        return
    collector = _ACTIVE[-1]
    collector.frames.append(0.0)
    start = time.perf_counter()
    try:
        yield
    finally:
        wall = time.perf_counter() - start
        child = collector.frames.pop()
        collector.times[name] = collector.times.get(name, 0.0) \
            + max(0.0, wall - child)
        if collector.frames:
            collector.frames[-1] += wall


# -------------------------------------------------------------- rendering

def merge_totals(per_file: dict[str, dict[str, float]]
                 ) -> dict[str, float]:
    """Sum per-file stage times into per-stage totals."""
    totals: dict[str, float] = {}
    for times in per_file.values():
        for stage_name, seconds in times.items():
            totals[stage_name] = totals.get(stage_name, 0.0) + seconds
    return totals


def _stage_order(names) -> list[str]:
    known = [s for s in STAGES if s in names]
    extra = sorted(n for n in names if n not in STAGES)
    return known + extra


def render_profile(per_file: dict[str, dict[str, float]],
                   *, per_file_rows: bool = True,
                   max_files: int = 40) -> str:
    """The stage breakdown table(s) for one batch run.

    A per-stage summary (total seconds, share, mean per file) always
    renders; the per-file matrix renders for up to ``max_files`` files
    (the slowest first beyond that would be noise).
    """
    totals = merge_totals(per_file)
    grand = sum(totals.values()) or 1.0
    names = _stage_order(totals)
    lines = ["stage       total s   share    mean ms/file"]
    lines.append("-" * len(lines[0]))
    n_files = max(1, len(per_file))
    for name in names:
        seconds = totals[name]
        lines.append(f"{name:<10}  {seconds:7.3f}  "
                     f"{100.0 * seconds / grand:5.1f}%  "
                     f"{1000.0 * seconds / n_files:12.2f}")
    lines.append(f"{'(all)':<10}  {sum(totals.values()):7.3f}  "
                 f"100.0%  "
                 f"{1000.0 * sum(totals.values()) / n_files:12.2f}")
    out = "\n".join(lines)
    if not per_file_rows or not per_file:
        return out
    shown = sorted(per_file,
                   key=lambda f: -sum(per_file[f].values()))[:max_files]
    width = max(4, *(len(name) for name in shown))
    header = "file".ljust(width) + "".join(
        f"  {name:>10}" for name in names) + f"  {'total ms':>10}"
    rows = [header, "-" * len(header)]
    for filename in sorted(shown):
        times = per_file[filename]
        cells = "".join(f"  {1000.0 * times.get(name, 0.0):10.2f}"
                        for name in names)
        total = 1000.0 * sum(times.values())
        rows.append(filename.ljust(width) + cells + f"  {total:10.2f}")
    dropped = len(per_file) - len(shown)
    if dropped > 0:
        rows.append(f"(… {dropped} more files omitted)")
    return out + "\n\n" + "\n".join(rows)
