"""SAFE LIBRARY REPLACEMENT (SLR) — paper §II-A and §III-B.

Replaces the six unsafe functions the paper targets with bounds-aware
alternatives, computing the destination buffer's size via Algorithm 1:

====================  ==========================================
unsafe                safe replacement
====================  ==========================================
``strcpy(d, s)``      ``g_strlcpy(d, s, LEN)``
``strcat(d, s)``      ``g_strlcat(d, s, LEN)``
``sprintf(d, f, …)``  ``g_snprintf(d, LEN, f, …)``
``vsprintf(d, f, a)`` ``g_vsnprintf(d, LEN, f, a)``
``gets(d)``           ``fgets(d, LEN, stdin)`` + newline strip
``memcpy(d, s, n)``   length clamped to LEN (Option 1 assigns the
                      length variable beforehand when it is used
                      later; Option 2 inlines a ternary)
====================  ==========================================

LEN is ``sizeof(buf)`` for static buffers and ``malloc_usable_size(p)``
for heap buffers (Algorithm 1).  When the buffer size cannot be
established, the precondition fails and the site is left untouched — the
failure reason is recorded for the evaluation tables.

Two *replacement profiles* implement Table I's alternative families:

* ``profile="glib"`` (default, the paper's Linux implementation):
  truncating glib functions, shown above;
* ``profile="c11"`` — ISO/IEC TR 24731 / C11 Annex K bounds-checked
  functions (``strcpy_s``, ``strcat_s``, ``sprintf_s``, ``vsprintf_s``,
  ``memcpy_s``, ``gets_s``), whose runtime-constraint semantics *reject*
  an oversized operation (empty destination, nonzero errno_t) instead of
  truncating — the paper's "Windows analogs can be implemented" remark.
"""

from __future__ import annotations

import re

from ..cfront import astnodes as ast
from ..cfront.rewriter import end_of_line, line_indent
from .bufferlen import BufferLength, BufferLengthAnalyzer, LengthFailure
from .transform import (
    PRECONDITION_FAILED, SiteOutcome, TRANSFORMED, Transformation,
)

#: Table I (excerpt): the unsafe functions SLR replaces and their safe
#: glib/C99 alternatives (the default profile).
SAFE_ALTERNATIVES: dict[str, str] = {
    "strcpy": "g_strlcpy",
    "strcat": "g_strlcat",
    "sprintf": "g_snprintf",
    "vsprintf": "g_vsnprintf",
    "gets": "fgets",
    "memcpy": "memcpy",        # kept, with a clamped length parameter
}

#: Table I: the ISO/IEC TR 24731 (C11 Annex K) alternative family.
C11_ALTERNATIVES: dict[str, str] = {
    "strcpy": "strcpy_s",
    "strcat": "strcat_s",
    "sprintf": "sprintf_s",
    "vsprintf": "vsprintf_s",
    "gets": "gets_s",
    "memcpy": "memcpy_s",
}

PROFILES = ("glib", "c11")

UNSAFE_FUNCTIONS = frozenset(SAFE_ALTERNATIVES)

# Declarations injected into the transformed (preprocessed) text when the
# program did not already declare the safe alternatives — the moral
# equivalent of the paper adding '-lglib-2.0' to the Makefile plus the
# header include.
_DECLARATIONS: dict[str, str] = {
    "g_strlcpy": "unsigned long g_strlcpy(char *dest, const char *src, "
                 "unsigned long dest_size);",
    "g_strlcat": "unsigned long g_strlcat(char *dest, const char *src, "
                 "unsigned long dest_size);",
    "g_snprintf": "int g_snprintf(char *string, unsigned long n, "
                  "const char *format, ...);",
    "g_vsnprintf": "int g_vsnprintf(char *string, unsigned long n, "
                   "const char *format, __builtin_va_list args);",
    "malloc_usable_size":
        "unsigned long malloc_usable_size(void *ptr);",
    "strchr": "char *strchr(const char *s, int c);",
    "strcspn": "unsigned long strcspn(const char *s, const char *reject);",
    "strcpy_s": "int strcpy_s(char *dest, unsigned long destsz, "
                "const char *src);",
    "strcat_s": "int strcat_s(char *dest, unsigned long destsz, "
                "const char *src);",
    "sprintf_s": "int sprintf_s(char *dest, unsigned long destsz, "
                 "const char *format, ...);",
    "vsprintf_s": "int vsprintf_s(char *dest, unsigned long destsz, "
                  "const char *format, __builtin_va_list args);",
    "memcpy_s": "int memcpy_s(void *dest, unsigned long destsz, "
                "const void *src, unsigned long n);",
    "gets_s": "char *gets_s(char *dest, unsigned long destsz);",
}


class SafeLibraryReplacement(Transformation):
    """Batch (or single-site) application of SLR to one translation unit."""

    name = "SLR"

    def __init__(self, text: str, filename: str = "<unit>",
                 profile: str = "glib", *, check_aliases: bool = True,
                 memcpy_option1: bool = True,
                 fix_ternary_alloc: bool = False,
                 reserved_names: frozenset = frozenset(), **kwargs):
        super().__init__(text, filename, **kwargs)
        if profile not in PROFILES:
            raise ValueError(f"unknown SLR profile {profile!r}; "
                             f"choose from {PROFILES}")
        self.profile = profile
        self.alternatives = SAFE_ALTERNATIVES if profile == "glib" \
            else C11_ALTERNATIVES
        self.lengths = BufferLengthAnalyzer(
            self.analysis, text, check_aliases=check_aliases,
            fix_ternary_alloc=fix_ternary_alloc)
        # Ablation switch: with Option 1 disabled, memcpy always gets the
        # inline ternary even when the length variable is read later.
        self.memcpy_option1 = memcpy_option1
        self._needed_decls: set[str] = set()
        #: Which function requested which declarations — harvested by the
        #: incremental engine so replayed components can reconstruct the
        #: finalize block without re-running their sites.
        self.decls_by_function: dict[str, set[str]] = {}
        self._site_function: str = ""
        #: Extra identifiers fresh names must avoid.  The incremental
        #: engine passes the identifier set of the *full* file here when
        #: transforming a reduced unit, making name allocation identical
        #: to a whole-file run.
        self.reserved_names = frozenset(reserved_names)
        self._base_names: set[str] | None = None
        self._allocated: dict[str, set[str]] = {}

    # ------------------------------------------------------------- targets

    def find_targets(self) -> list[ast.Call]:
        targets = []
        for fn in self.unit.functions():
            for node in fn.body.walk():
                if isinstance(node, ast.Call) and \
                        node.callee_name in UNSAFE_FUNCTIONS:
                    targets.append(node)
        # Apply sites bottom-up so queued edits never overlap when two
        # targets share a line.
        targets.sort(key=lambda c: c.extent.start, reverse=True)
        return targets

    # ------------------------------------------------------------ dispatch

    def apply_to(self, call: ast.Call) -> SiteOutcome:
        callee = call.callee_name or "<indirect>"
        base = dict(transformation=self.name, target=callee,
                    function=self.function_of(call), line=self.line_of(call))
        if callee not in UNSAFE_FUNCTIONS:
            return SiteOutcome(**base, status=PRECONDITION_FAILED,
                               reason="not-unsafe-function",
                               detail=f"{callee} is not handled by SLR")
        self._site_function = base["function"] or ""
        handler = {
            "strcpy": self._replace_str2,
            "strcat": self._replace_str2,
            "sprintf": self._replace_sprintf,
            "vsprintf": self._replace_sprintf,
            "gets": self._replace_gets,
            "memcpy": self._replace_memcpy,
        }[callee]
        return handler(call, base)

    # ------------------------------------------------------- strcpy/strcat

    def _replace_str2(self, call: ast.Call, base: dict) -> SiteOutcome:
        if len(call.args) != 2:
            return self._fail(base, "bad-arity",
                              f"{base['target']} call with "
                              f"{len(call.args)} arguments")
        length = self.lengths.get_buffer_length(call.args[0])
        if isinstance(length, LengthFailure):
            return self._fail(base, length.reason, length.detail)
        new_name = self.alternatives[base["target"]]
        self._rename_callee(call, new_name)
        if self.profile == "glib":
            # g_strlcpy(dest, src, size)
            self.rewriter.insert_after(call.args[1].extent,
                                       f", {length.render()}")
        else:
            # strcpy_s(dest, destsz, src)
            self.rewriter.insert_after(call.args[0].extent,
                                       f", {length.render()}")
        self._note_decls(new_name, length)
        return self._ok(base)

    # ---------------------------------------------------- sprintf/vsprintf

    def _replace_sprintf(self, call: ast.Call, base: dict) -> SiteOutcome:
        if len(call.args) < 2:
            return self._fail(base, "bad-arity",
                              f"{base['target']} call with "
                              f"{len(call.args)} arguments")
        length = self.lengths.get_buffer_length(call.args[0])
        if isinstance(length, LengthFailure):
            return self._fail(base, length.reason, length.detail)
        new_name = self.alternatives[base["target"]]
        self._rename_callee(call, new_name)
        # Size parameter goes between the destination and the format
        # (both glib and Annex K families use this signature).
        self.rewriter.insert_after(call.args[0].extent,
                                   f", {length.render()}")
        self._note_decls(new_name, length)
        return self._ok(base)

    # ---------------------------------------------------------------- gets

    def _replace_gets(self, call: ast.Call, base: dict) -> SiteOutcome:
        if len(call.args) != 1:
            return self._fail(base, "bad-arity", "gets takes one argument")
        length = self.lengths.get_buffer_length(call.args[0])
        if isinstance(length, LengthFailure):
            return self._fail(base, length.reason, length.detail)
        stmt = call.enclosing_statement()
        if stmt is None:
            return self._fail(base, "unsupported-expr",
                              "gets outside a statement")
        if self.profile == "c11":
            # gets_s(dest, destsz): no stream argument, no newline kept —
            # no epilogue needed.
            self._rename_callee(call, "gets_s")
            self.rewriter.insert_after(call.args[0].extent,
                                       f", {length.render()}")
            self._note_decls("gets_s", length)
            return self._ok(base)
        dest_text = self.src(call.args[0])
        value_used = not (isinstance(stmt, ast.ExprStmt)
                          and stmt.expr is call)
        if value_used:
            # The return value is consumed (`if (gets(line)) ...`): a
            # statement-level epilogue would strip the newline only
            # after the consumer already ran.  Rewrite the call itself
            # into an expression that strips before yielding the value:
            #     (fgets(d, N, stdin)
            #        ? (d[strcspn(d, "\n")] = '\0', d) : (char *)0)
            # The destination is evaluated more than once, so only a
            # plain identifier qualifies.
            if not isinstance(call.args[0], ast.Identifier):
                return self._fail(
                    base, "unsupported-expr",
                    "gets value consumed and destination is not a "
                    "simple identifier")
            self._rename_callee(call, "fgets")
            self.rewriter.insert_after(call.args[0].extent,
                                       f", {length.render()}, stdin")
            self.rewriter.insert_before(call.extent.start, "(")
            self.rewriter.insert_after(
                call.extent,
                f" ? ({dest_text}[strcspn({dest_text}, \"\\n\")] = "
                f"'\\0', {dest_text}) : (char *)0)")
            self._note_decl("strcspn")
            self._note_decl("fgets")
            self._note_decls("fgets", length)
            return self._ok(base)
        self._rename_callee(call, "fgets")
        self.rewriter.insert_after(call.args[0].extent,
                                   f", {length.render()}, stdin")
        # fgets keeps the trailing newline that gets strips: add the
        # newline-removal epilogue after the statement (paper §III-B2).
        check = self._fresh_name("check", self._site_function)
        if self._owns_its_lines(stmt):
            indent = line_indent(self.text, stmt.extent.start)
            epilogue = (
                f"{indent}char *{check} = strchr({dest_text}, '\\n');\n"
                f"{indent}if ({check}) {{\n"
                f"{indent}    *{check} = '\\0';\n"
                f"{indent}}}\n"
            )
            insert_at = end_of_line(self.text, stmt.extent.end - 1)
            self.rewriter.insert_before(insert_at, epilogue)
        else:
            # The statement is a brace-less if/else/loop body (or shares
            # its line with other code): an epilogue inserted after the
            # line would run even when the body is skipped, and could
            # steal a dangling `else`.  Wrap statement + epilogue in one
            # block so they execute (or not) together.
            self.rewriter.insert_before(stmt.extent.start, "{ ")
            self.rewriter.insert_before(
                stmt.extent.end,
                f" char *{check} = strchr({dest_text}, '\\n'); "
                f"if ({check}) {{ *{check} = '\\0'; }} }}")
        self._note_decl("strchr")
        # Added directly (not via _note_decls): "fgets" has no entry in
        # _DECLARATIONS — its prototype rides with the FILE/stdin block
        # below — but finalize keys that block on this set membership.
        self._note_decl("fgets")
        self._note_decls("fgets", length)
        return self._ok(base)

    # -------------------------------------------------------------- memcpy

    def _replace_memcpy(self, call: ast.Call, base: dict) -> SiteOutcome:
        if len(call.args) != 3:
            return self._fail(base, "bad-arity",
                              "memcpy takes three arguments")
        dest_type = call.args[0].ctype
        if dest_type is not None:
            decayed = dest_type.decay()
            pointee = decayed.pointee if decayed.is_pointer else None
            if pointee is not None and not (pointee.is_char or
                                            pointee.is_void):
                return self._fail(
                    base, "non-char-buffer",
                    "memcpy destination is not a character buffer")
        length = self.lengths.get_buffer_length(call.args[0])
        if isinstance(length, LengthFailure):
            return self._fail(base, length.reason, length.detail)
        if self.profile == "c11":
            # memcpy_s(dest, destsz, src, n): the runtime check replaces
            # the clamp entirely.
            self._rename_callee(call, "memcpy_s")
            self.rewriter.insert_after(call.args[0].extent,
                                       f", {length.render()}")
            self._note_decls("memcpy_s", length)
            return self._ok(base)
        size_arg = call.args[2]
        dst_len = length.render()
        stmt = call.enclosing_statement()
        used_later = self.memcpy_option1 and \
            self._length_used_later(size_arg, call)
        if used_later and isinstance(size_arg, ast.Identifier) and \
                stmt is not None and self._owns_its_lines(stmt):
            # Option 1: clamp the length variable before the call, since
            # later statements (e.g. NUL termination) read it.  Only
            # valid when the statement sits directly in a compound block
            # and owns its line — a clamp hoisted above a brace-less
            # `if (c) memcpy(...)` would mutate the variable even on the
            # untaken branch (Option 2 below stays conditional).
            name = size_arg.name
            indent = line_indent(self.text, stmt.extent.start)
            clamp = (f"{indent}{name} = {dst_len} > {name} ? "
                     f"{name} : {dst_len};\n")
            line_start = self.text.rfind("\n", 0, stmt.extent.start) + 1
            self.rewriter.insert_before(line_start, clamp)
        else:
            # Option 2: inline ternary replaces the length argument.
            size_text = self.src(size_arg)
            self.rewriter.replace(
                size_arg.extent,
                f"{dst_len} > {size_text} ? {size_text} : {dst_len}")
        self._note_decls("memcpy", length)
        return self._ok(base)

    def _length_used_later(self, size_arg: ast.Expression,
                           call: ast.Call) -> bool:
        """Is the length expression's variable read in control-flow
        successors of the call (paper's Option 1 trigger)?"""
        if not isinstance(size_arg, ast.Identifier) or \
                size_arg.symbol is None:
            return False
        fn = call.enclosing_function()
        if fn is None:
            return False
        stmt = call.enclosing_statement()
        cfg = self.analysis.cfg_of(fn.name)
        if stmt is None or cfg is None:
            return False
        call_node = cfg.node_for(stmt)
        if call_node is None:
            return False
        # Any CFG node reachable from the call that mentions the symbol.
        seen = set()
        frontier = list(call_node.succs)
        while frontier:
            node = frontier.pop()
            if node.nid in seen:
                continue
            seen.add(node.nid)
            if node.stmt is not None:
                for sub in node.stmt.walk():
                    if isinstance(sub, ast.Identifier) and \
                            sub.symbol is size_arg.symbol:
                        return True
            frontier.extend(node.succs)
        return False

    # -------------------------------------------------------------- helpers

    def _owns_its_lines(self, stmt: ast.Statement) -> bool:
        """Can whole lines be inserted around ``stmt`` without changing
        control flow?

        True only when the statement sits directly inside a compound
        block (so an adjacent line executes iff the statement does) and
        shares its first/last line with nothing else (so line-granular
        insertion points fall inside the same block).
        """
        if not isinstance(stmt.parent, ast.CompoundStmt):
            return False
        line_start = self.text.rfind("\n", 0, stmt.extent.start) + 1
        if self.text[line_start:stmt.extent.start].strip():
            return False
        eol = end_of_line(self.text, stmt.extent.end - 1)
        if self.text[stmt.extent.end:eol].strip():
            return False
        return True

    def _rename_callee(self, call: ast.Call, new_name: str) -> None:
        self.rewriter.replace(call.func.extent, new_name)

    def _note_decl(self, name: str) -> None:
        self._needed_decls.add(name)
        self.decls_by_function.setdefault(self._site_function,
                                          set()).add(name)

    def _note_decls(self, new_name: str, length: BufferLength) -> None:
        if new_name in _DECLARATIONS:
            self._note_decl(new_name)
        if length.kind == "heap":
            self._note_decl("malloc_usable_size")

    def _fresh_name(self, base: str, scope: str | None = None) -> str:
        """A temporary name nothing in the unit already uses — a bare
        ``check`` would otherwise capture (or redeclare) a user variable
        of the same name in scope.

        Names are allocated per ``scope`` (the enclosing function):
        serials restart in every function, so the name chosen for a site
        depends only on that function's own text and earlier sites — not
        on how many sites other functions contain.  That independence is
        what lets the incremental engine re-run one function and obtain
        the bytes a whole-file run would have produced.  ``scope=None``
        (finalize-level names) additionally avoids every per-function
        allocation.
        """
        if self._base_names is None:
            names = set(_IDENTIFIER.findall(self.text))
            names.update(s.name
                         for s in self.analysis.symbols.all_symbols)
            names.update(self.reserved_names)
            self._base_names = names
        taken = self._allocated.setdefault(scope or "", set())
        avoid = self._base_names | taken
        if scope is None:
            for allocated in self._allocated.values():
                avoid = avoid | allocated
        candidate = base
        serial = 1
        while candidate in avoid:
            serial += 1
            candidate = f"{base}_{serial}"
        taken.add(candidate)
        return candidate

    def _ok(self, base: dict) -> SiteOutcome:
        return SiteOutcome(**base, status=TRANSFORMED)

    def _fail(self, base: dict, reason: str, detail: str) -> SiteOutcome:
        return SiteOutcome(**base, status=PRECONDITION_FAILED,
                           reason=reason, detail=detail)

    def finalize(self) -> None:
        for block in finalize_blocks(self.text, self._needed_decls):
            self.rewriter.insert_before(0, block)


class TR24731Replacement(SafeLibraryReplacement):
    """ISO/IEC TR 24731-1 backend: the ``c11`` replacement profile plus
    runtime-constraint *handler emission*.

    The ``_s`` family's contract (Laverdière-Papineau et al.) is that a
    rejected operation invokes the installed runtime-constraint handler.
    This transformation therefore goes one step beyond
    ``SafeLibraryReplacement(profile="c11")``: when any site was
    rewritten it also emits a reporting handler (a ``perror`` of the
    violation message — stderr, so the differential oracle's observable
    stdout/exit/fault triple is untouched) and installs it with
    ``set_constraint_handler_s`` as the first statement of ``main``.
    """

    name = "TR24731"

    def __init__(self, text: str, filename: str = "<unit>", **kwargs):
        kwargs.pop("profile", None)
        super().__init__(text, filename, profile="c11", **kwargs)

    def finalize(self) -> None:
        super().finalize()
        if not any(o.transformed for o in self.outcomes):
            return
        main = next((fn for fn in self.unit.functions()
                     if fn.name == "main"), None)
        if main is None or not isinstance(main.body, ast.CompoundStmt):
            return
        handler = self._fresh_name("repro_constraint_handler")
        lines = []
        if not _already_declared(self.text, "set_constraint_handler_s"):
            lines.append("void set_constraint_handler_s("
                         "void (*handler)(const char *, void *, int));")
        if not _already_declared(self.text, "perror"):
            lines.append("void perror(const char *s);")
        lines.append(f"void {handler}(const char *msg, void *ptr, "
                     f"int error) {{\n"
                     f"    perror(msg);\n"
                     f"}}")
        self.rewriter.insert_before(
            0, "/* Runtime-constraint handler added by TR 24731 "
               "REPLACEMENT. */\n" + "\n".join(lines) + "\n\n")
        # First statement of main: install the handler before any _s
        # call can possibly reject.
        self.rewriter.insert_before(
            main.body.extent.start + 1,
            f"\n    set_constraint_handler_s({handler});")


def apply_tr24731(text: str, filename: str = "<unit>"):
    """Convenience: run the TR 24731 replacement over ``text``."""
    return TR24731Replacement(text, filename).run()


_IDENTIFIER = re.compile(r"[A-Za-z_]\w*")

#: String/char literals and comments, blanked before brace counting so a
#: lone ``"{"`` in a format string cannot skew the scope depth.
_LITERAL_OR_COMMENT = re.compile(
    r'"(?:[^"\\\n]|\\.)*"'
    r"|'(?:[^'\\\n]|\\.)*'"
    r"|/\*.*?\*/"
    r"|//[^\n]*", re.S)


def _already_declared(text: str, name: str) -> bool:
    """Does the (preprocessed) text declare ``name`` at file scope?

    Only a ``name(`` token at brace depth zero counts — a declaration or
    a definition.  Call sites always sit inside a function body (depth
    >= 1), so a program that merely *calls* e.g. ``fgets`` through a K&R
    implicit declaration no longer suppresses the injected prototype.
    """
    stripped = _LITERAL_OR_COMMENT.sub('""', text)
    scanner = re.compile(r"[{}]|\b" + re.escape(name) + r"\s*\(")
    depth = 0
    for match in scanner.finditer(stripped):
        token = match.group(0)
        if token == "{":
            depth += 1
        elif token == "}":
            depth = max(0, depth - 1)
        elif depth == 0:
            return True
    return False


def finalize_blocks(text: str, needed_decls: set) -> list[str]:
    """The finalize-stage blocks SLR inserts at offset 0, in queue
    order, as a pure function of the input text and the union of
    per-site declaration needs.

    Shared between :meth:`SafeLibraryReplacement.finalize` and the
    incremental engine, which recomputes the blocks from merged cached
    per-function needs instead of re-running every site.
    """
    blocks = []
    decls = [
        _DECLARATIONS[name]
        for name in sorted(needed_decls)
        if name in _DECLARATIONS and not _already_declared(text, name)
    ]
    if decls:
        blocks.append("/* Declarations added by SAFE LIBRARY REPLACEMENT "
                      "(link with -lglib-2.0). */\n" + "\n".join(decls)
                      + "\n\n")
    # fgets needs FILE/stdin; declare them if the program lacks stdio.
    if "fgets" in needed_decls and "stdin" not in text:
        blocks.append("typedef struct _FILE FILE;\n"
                      "extern FILE *stdin;\n"
                      "char *fgets(char *s, int size, FILE *stream);\n\n")
    return blocks


def apply_slr(text: str, filename: str = "<unit>",
              profile: str = "glib"):
    """Convenience: run SLR over all unsafe calls in ``text``."""
    return SafeLibraryReplacement(text, filename, profile=profile).run()
