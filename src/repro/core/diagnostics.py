"""Structured per-file failure diagnostics for the batch pipeline.

The paper's evaluation applies SLR/STR "on all possible targets" across
whole programs; at that scale one pathological file must degrade to a
*record*, not a crash.  Every stage guard in
:func:`repro.core.batch.transform_file` converts an exception into a
:class:`FileDiagnostic` — stage, exception class, source location when
the error carries one, and a truncated traceback — attached to the
file's report, and the file is marked ``degraded`` or ``failed`` instead
of killing the batch.

Diagnostics are plain picklable dataclasses: fork-pool workers ship them
back on the report, the CLI renders them as a table
(``repro batch`` / :func:`repro.core.report.render_diagnostics`), and
``--diagnostics-json`` emits them machine-readably.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass

from ..cfront.source import SourceError

#: Per-file outcome statuses, ordered from best to worst.
STATUS_OK = "ok"                # every requested stage succeeded
STATUS_DEGRADED = "degraded"    # some stage failed; partial result shipped
STATUS_FAILED = "failed"        # nothing transformed; input shipped verbatim
STATUS_QUARANTINED = "quarantined"  # known poison file skipped; input
                                    # shipped verbatim without spending
                                    # the retry/timeout budget

STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_FAILED,
            STATUS_QUARANTINED)

#: Synthetic diagnostic kinds the supervisor records (no exception class
#: exists for a worker the parent had to kill or that died under it).
KIND_TIMEOUT = "timeout"
KIND_WORKER_DIED = "worker-died"

#: Diagnostic kind for a file skipped because an earlier journaled run
#: quarantined its content (see :mod:`repro.core.runlog`).
KIND_QUARANTINED = "quarantined"

#: Traceback truncation bounds: enough to locate a bug, small enough to
#: ship thousands of diagnostics through a result queue.
MAX_TRACEBACK_LINES = 8
MAX_MESSAGE_CHARS = 500


@dataclass
class FileDiagnostic:
    """One contained failure: what broke, where, and how it was handled."""

    filename: str
    stage: str              # preprocess|parse|slr|str|verify|validate|worker
    kind: str               # exception class name, 'timeout', 'worker-died'
    message: str
    location: str = ""      # "file:line:col" when the error carried one
    traceback: str = ""     # truncated; empty for supervisor diagnostics
    retries: int = 0        # attempts beyond the first before giving up

    def as_dict(self) -> dict:
        return {"filename": self.filename, "stage": self.stage,
                "kind": self.kind, "message": self.message,
                "location": self.location, "traceback": self.traceback,
                "retries": self.retries}


def _truncate(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


def diagnostic_from_exception(stage: str, filename: str,
                              exc: BaseException, *,
                              retries: int = 0) -> FileDiagnostic:
    """Build a diagnostic from a caught exception.

    Frontend errors (:class:`~repro.cfront.source.SourceError` and
    subclasses) caught inside a transformation guard are attributed to
    the ``parse`` stage — the transform never ran, its parse did — and
    contribute their source location.
    """
    location = ""
    if isinstance(exc, SourceError):
        if stage in ("slr", "str", "verify"):
            stage = "parse"
        location = f"{exc.filename}:{exc.line}"
        if exc.col:
            location += f":{exc.col}"
    tb_lines = _traceback.format_exception(type(exc), exc,
                                           exc.__traceback__)
    tb_text = "".join(tb_lines[-MAX_TRACEBACK_LINES:]).rstrip()
    return FileDiagnostic(
        filename=filename, stage=stage, kind=type(exc).__name__,
        message=_truncate(str(exc) or type(exc).__name__,
                          MAX_MESSAGE_CHARS),
        location=location,
        traceback=_truncate(tb_text, MAX_MESSAGE_CHARS * 4),
        retries=retries)


def supervisor_diagnostic(filename: str, kind: str, message: str, *,
                          retries: int = 0) -> FileDiagnostic:
    """A diagnostic the pool supervisor records on the worker's behalf
    (timeout watchdog fired, worker process died)."""
    return FileDiagnostic(filename=filename, stage="worker", kind=kind,
                          message=_truncate(message, MAX_MESSAGE_CHARS),
                          retries=retries)


def status_of(diagnostics: list[FileDiagnostic],
              produced_any_transform: bool) -> str:
    """Classify a file's outcome from its diagnostics.

    ``failed`` means no transformation output survived (the input ships
    verbatim); ``degraded`` means a partial result shipped (e.g. STR
    failed but SLR's output is good).
    """
    if not diagnostics:
        return STATUS_OK
    if any(d.stage == "worker" for d in diagnostics):
        return STATUS_FAILED
    return STATUS_DEGRADED if produced_any_transform else STATUS_FAILED
