"""Pluggable fix-backend registry and per-site best-fix arbitration.

The paper ships exactly two transformations (SLR, STR) and the pipeline
used to hardwire that pair.  This module generalizes the spine: a
:class:`FixBackend` is one registered way of producing a candidate fix
for a translation unit, identified by a stable id that salts every
content-addressed store key its artifacts are filed under.  Four
backends register by default:

``slr``
    SAFE LIBRARY REPLACEMENT with the truncating glib family (paper
    §II-A, Table I).
``str``
    SAFE TYPE REPLACEMENT onto stralloc safe strings (paper §II-B).
``tr24731``
    ISO/IEC TR 24731-1 (C11 Annex K) ``_s``-family rewriting —
    ``strcpy``/``strcat``/``sprintf``/``vsprintf``/``gets``/``memcpy``
    become their bounds-checked ``_s`` analogs, and a runtime-constraint
    handler is emitted and installed via ``set_constraint_handler_s`` so
    rejected operations are reported (Laverdière-Papineau et al., "On
    Implementation of a Safer C Library").
``s3lib``
    An S3Library-style *signature-preserving* safer library (Sun et
    al.): unsafe calls are renamed to ``s3_*`` wrappers with identical
    call shapes; the wrappers discover the destination's real capacity
    at runtime (the VM's bounds metadata stands in for S3Library's
    allocation interposition) and truncate instead of smashing.  Because
    no size expression is inserted, sites whose buffer length Algorithm
    1 cannot establish — SLR's main failure class — are still fixable.

**Arbitration** promotes the PR 2 differential oracle from gate to
judge: :func:`arbitrate_file` applies every requested backend to the
same input, validates each candidate against the original under the VM,
and selects the best verdict per file.  The ordering is
``overflow-prevented`` ≻ ``identical`` ≻ no change, and a candidate with
*any* ``semantics-changed`` divergence is disqualified outright — a
worse file is never shipped, extending the PR 5 graceful-degradation
contract to the backend search.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field

from ..cfront.cache import ContentCache, content_key
from .session import AnalysisSession, get_session
from .transform import TransformResult, Transformation
from .validate import (
    VERDICT_BENIGN, VERDICT_PREVENTED, DifferentialInput,
    ValidationReport, default_inputs, validate_pair,
)

#: Salt for candidate artifacts: bumped when the arbitration contract
#: (scoring, statuses, candidate shape) changes in a way the tool
#: fingerprint alone would not capture.  ``arb2``: per-site candidate
#: keying + edit capture on cached results.
ARBITRATION_VERSION = "arb2"

#: How the winning fix for a file is assembled.  ``file`` is the PR 6
#: whole-file winner-take-all; ``site`` composes the best backend per
#: call site and re-judges the composite, degrading back to the
#: whole-file winner whenever the composite is not strictly better.
ARBITRATION_MODES = ("file", "site")

#: Pseudo-backend id carried by a shipped per-site composite.
COMPOSITE_BACKEND = "site-composite"

#: The legacy pipeline's backend chain — ``apply_batch`` without a
#: ``backends=`` request runs SLR then STR sequentially, exactly as
#: every PR before the registry did.
DEFAULT_BACKENDS = ("slr", "str")

#: Candidate statuses, best to worst.
CANDIDATE_SELECTED = "selected"            # won the arbitration
CANDIDATE_RUNNER_UP = "runner-up"          # valid fix, a better one won
CANDIDATE_REJECTED = "rejected"            # semantics-changed / no parse
CANDIDATE_NO_CHANGE = "no-change"          # sites found, none transformable
CANDIDATE_NOT_APPLICABLE = "not-applicable"  # no candidate sites at all
CANDIDATE_ERROR = "error"                  # backend raised (contained)
CANDIDATE_SKIPPED = "breaker-skipped"      # circuit breaker open

CANDIDATE_STATUSES = (
    CANDIDATE_SELECTED, CANDIDATE_RUNNER_UP, CANDIDATE_REJECTED,
    CANDIDATE_NO_CHANGE, CANDIDATE_NOT_APPLICABLE, CANDIDATE_ERROR,
    CANDIDATE_SKIPPED,
)


# -------------------------------------------------------- circuit breaker

#: Breaker states (the classic three-state pattern).
BREAKER_CLOSED = "closed"          # healthy: candidates run normally
BREAKER_OPEN = "open"              # tripped: candidates skipped
BREAKER_HALF_OPEN = "half-open"    # cooldown over: one trial allowed


def breaker_threshold() -> int:
    """Consecutive operational failures (backend raised, candidate did
    not parse, or the judge itself errored) that open a backend's
    breaker.  ``REPRO_BREAKER_THRESHOLD`` (default 10); 0 disables
    breakers entirely."""
    from .envknobs import int_knob
    return int_knob("REPRO_BREAKER_THRESHOLD", 10, minimum=0)


def breaker_cooldown() -> int:
    """Files an open breaker skips before half-opening for one trial
    (``REPRO_BREAKER_COOLDOWN``, default 5, min 1).  Measured in files,
    not wall time, so serial and replayed runs behave identically."""
    from .envknobs import int_knob
    return int_knob("REPRO_BREAKER_COOLDOWN", 5, minimum=1)


class _BreakerState:
    """One backend's breaker.  Per-process state: each fork-pool worker
    trips its own breaker from the failures it witnesses — there is no
    cross-process coordination, so a healthy run (no failures anywhere)
    is bit-for-bit identical at any jobs count."""

    __slots__ = ("state", "failures", "cooldown_left", "skips",
                 "trips", "warned")

    def __init__(self) -> None:
        self.state = BREAKER_CLOSED
        self.failures = 0        # consecutive operational failures
        self.cooldown_left = 0   # files left before half-open
        self.skips = 0           # candidates skipped while open (tally)
        self.trips = 0           # times the breaker opened
        self.warned = False

    def should_skip(self, backend_id: str) -> bool:
        """Called once per file before running the backend; advances the
        cooldown clock when open."""
        if self.state == BREAKER_OPEN:
            if self.cooldown_left <= 0:
                self.state = BREAKER_HALF_OPEN
                return False
            self.cooldown_left -= 1
            self.skips += 1
            return True
        return False

    def record_failure(self, backend_id: str, reason: str) -> None:
        threshold = breaker_threshold()
        if threshold <= 0:
            return
        if self.state == BREAKER_HALF_OPEN:
            # The trial failed: straight back to open.
            self._trip(backend_id, reason)
            return
        self.failures += 1
        if self.failures >= threshold:
            self._trip(backend_id, reason)

    def record_success(self) -> None:
        self.failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED

    def _trip(self, backend_id: str, reason: str) -> None:
        self.state = BREAKER_OPEN
        self.cooldown_left = breaker_cooldown()
        self.failures = 0
        self.trips += 1
        if not self.warned:
            self.warned = True
            warnings.warn(
                f"backend {backend_id!r} circuit breaker opened after "
                f"{breaker_threshold()} consecutive failures (last: "
                f"{reason}); skipping it for "
                f"{self.cooldown_left} file(s) before retrying",
                RuntimeWarning, stacklevel=4)


#: Per-process breaker registry (reset at the top of every batch).
_BREAKERS: dict[str, _BreakerState] = {}


def _breaker_for(backend_id: str) -> _BreakerState:
    state = _BREAKERS.get(backend_id)
    if state is None:
        state = _BREAKERS[backend_id] = _BreakerState()
    return state


def reset_breakers() -> None:
    """Forget all breaker state — called at batch start (pre-fork) so
    one run's pathology never bleeds into the next."""
    _BREAKERS.clear()


class FixBackend:
    """One registered fix strategy.

    Subclasses provide :meth:`build` (construct the
    :class:`~repro.core.transform.Transformation` for one unit — site
    discovery, per-site preconditions, and the checkpoint/rollback edit
    machinery all come from that base class) and may refine
    :meth:`config_key` when the backend has knobs that change its
    output.  ``id`` is the stable registry name: it appears in CLI
    ``--backends`` lists, scoreboards, diagnostics, and every store key
    the backend's candidates are cached under.
    """

    id: str = ""
    title: str = ""
    description: str = ""

    def build(self, text: str, filename: str,
              session: AnalysisSession) -> Transformation:
        raise NotImplementedError

    def config_key(self) -> str:
        """Extra key material when the backend's output depends on
        configuration beyond its id (e.g. an SLR profile)."""
        return ""

    def run(self, text: str, filename: str,
            session: AnalysisSession | None = None) -> TransformResult:
        """Apply this backend to ``text``; the result is tagged with the
        backend id so downstream consumers can attribute it."""
        session = session if session is not None else get_session()
        result = self.build(text, filename, session).run()
        result.backend = self.id
        return result


class SLRBackend(FixBackend):
    id = "slr"
    title = "Safe Library Replacement (glib)"
    description = ("replace strcpy/strcat/sprintf/vsprintf/gets/memcpy "
                   "with truncating g_strl* alternatives sized by "
                   "Algorithm 1")

    def build(self, text, filename, session):
        from .slr import SafeLibraryReplacement
        return SafeLibraryReplacement(text, filename, profile="glib",
                                      session=session)

    def config_key(self) -> str:
        return "profile=glib"


class STRBackend(FixBackend):
    id = "str"
    title = "Safe Type Replacement (stralloc)"
    description = ("replace local char buffers with stralloc safe "
                   "strings, rewriting all uses per Table II")

    def build(self, text, filename, session):
        from .strtransform import SafeTypeReplacement
        return SafeTypeReplacement(text, filename, session=session)


class TR24731Backend(FixBackend):
    id = "tr24731"
    title = "ISO/IEC TR 24731-1 _s family"
    description = ("rewrite unsafe calls to strcpy_s-family "
                   "bounds-checked functions and install a "
                   "runtime-constraint handler in main")

    def build(self, text, filename, session):
        from .slr import TR24731Replacement
        return TR24731Replacement(text, filename, session=session)

    def config_key(self) -> str:
        return "profile=c11+handler"


class S3LibBackend(FixBackend):
    id = "s3lib"
    title = "S3Library signature-preserving safer library"
    description = ("rename unsafe calls to s3_* wrappers with identical "
                   "signatures; capacity is discovered at runtime, so "
                   "no buffer-length precondition applies")

    def build(self, text, filename, session):
        from .s3lib import S3LibraryReplacement
        return S3LibraryReplacement(text, filename, session=session)


# --------------------------------------------------------------- registry

class UnknownBackendError(KeyError):
    """An unregistered backend id was requested.

    Subclasses :class:`KeyError` so existing ``except KeyError`` guards
    keep working, but renders as the plain message — ``str(KeyError)``
    repr-quotes its argument, which made a typo'd ``--backends`` id
    surface as a quoted blob (or, from entry points without a guard, a
    raw traceback).
    """

    def __str__(self) -> str:
        return str(self.args[0]) if self.args else ""


_REGISTRY: dict[str, FixBackend] = {}


def register_backend(backend: FixBackend, *, replace: bool = False) -> None:
    """Register ``backend`` under its id (tests register stubs; the four
    standard backends are installed at import time)."""
    if not backend.id:
        raise ValueError("backend must carry a non-empty id")
    if backend.id in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.id!r} already registered")
    _REGISTRY[backend.id] = backend


def unregister_backend(backend_id: str) -> None:
    _REGISTRY.pop(backend_id, None)


def get_backend(backend_id: str) -> FixBackend:
    backend = _REGISTRY.get(backend_id)
    if backend is None:
        raise UnknownBackendError(
            f"unknown fix backend {backend_id!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}")
    return backend


def backend_ids() -> tuple[str, ...]:
    """Every registered backend id, in registration order."""
    return tuple(_REGISTRY)


def all_backends() -> list[FixBackend]:
    return list(_REGISTRY.values())


def resolve_backends(spec) -> tuple[str, ...]:
    """Normalize a backend request into an ordered tuple of known ids.

    Accepts a comma-separated string (the CLI's ``--backends a,b,c``),
    any iterable of ids, or ``"all"`` for every registered backend.
    Order is preserved — it is the arbitration tie-break — and
    duplicates collapse to their first occurrence.
    """
    if isinstance(spec, str):
        if spec.strip().lower() == "all":
            return backend_ids()
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = [str(part).strip() for part in spec]
    if not names:
        raise ValueError("empty backend list")
    seen: list[str] = []
    for name in names:
        get_backend(name)                      # raise on unknown ids
        if name not in seen:
            seen.append(name)
    return tuple(seen)


def backends_from_env() -> tuple[str, ...] | None:
    """The ``REPRO_BACKENDS`` default (None when unset/empty)."""
    raw = os.environ.get("REPRO_BACKENDS", "").strip()
    return resolve_backends(raw) if raw else None


def resolve_arbitration(value) -> str:
    """Normalize an arbitration-mode request; ``None``/empty -> ``file``."""
    if value is None:
        return "file"
    mode = str(value).strip().lower()
    if not mode:
        return "file"
    if mode not in ARBITRATION_MODES:
        raise ValueError(
            f"unknown arbitration mode {mode!r}; choose from: "
            f"{', '.join(ARBITRATION_MODES)}")
    return mode


def arbitration_from_env() -> str | None:
    """The ``REPRO_ARBITRATION`` default (None when unset/empty)."""
    raw = os.environ.get("REPRO_ARBITRATION", "").strip()
    return resolve_arbitration(raw) if raw else None


for _backend in (SLRBackend(), STRBackend(), TR24731Backend(),
                 S3LibBackend()):
    register_backend(_backend)


# ------------------------------------------------------- cached execution

#: Whole candidate transform results, persisted like the slr/str caches
#: but shared by every backend: keys are salted with the backend id,
#: the backend's config, and the arbitration version, so candidates
#: from different backends (or different knob settings) can never
#: collide in the store.
_BACKEND_CACHE = ContentCache("backend", family="backend")


def backend_cache_key(backend: FixBackend, text: str) -> str:
    return content_key("backend", ARBITRATION_VERSION, backend.id,
                       backend.config_key(), text)


def cached_backend_run(backend_id: str, text: str, filename: str,
                       session: AnalysisSession | None = None
                       ) -> TransformResult:
    """Run (or replay) one backend over ``text``; results are shared and
    must be treated as immutable."""
    backend = get_backend(backend_id)
    return _BACKEND_CACHE.get_or_build(
        backend_cache_key(backend, text),
        lambda: backend.run(text, filename, session))


#: Single-site candidate texts, one per (backend, site, input text):
#: the site's own edits plus the backend's finalize edits replayed
#: against the pristine input.  Keys are salted with the site identity
#: (function, line, target, occurrence) on top of the backend salt, so
#: per-site candidates from different sites — or the whole-file
#: candidate — can never collide in the store.
_SITE_CACHE = ContentCache("site", family="site")


def site_cache_key(backend: FixBackend, site: tuple, text: str) -> str:
    function, line, target, occurrence = site
    return content_key("site", ARBITRATION_VERSION, backend.id,
                       backend.config_key(), function, str(line), target,
                       str(occurrence), text)


def _build_site_text(text: str, edits: tuple, finalize_edits: tuple) -> str:
    """Replay one site's captured edits (plus the owning backend's
    whole-file finalize edits) against the pristine input."""
    from ..cfront.rewriter import Rewriter
    rewriter = Rewriter(text)
    for start, end, replacement in edits:
        rewriter.replace_range(start, end, replacement)
    for start, end, replacement in finalize_edits:
        rewriter.replace_range(start, end, replacement)
    return rewriter.apply()


# ------------------------------------------------------------ arbitration

@dataclass
class BackendCandidate:
    """One backend's attempt at fixing one file, plus the judge's view."""

    backend: str
    result: TransformResult | None
    parses: bool = True
    validation: ValidationReport | None = None
    status: str = CANDIDATE_NO_CHANGE
    reason: str = ""

    @property
    def changed(self) -> bool:
        return self.result is not None and self.result.changed

    @property
    def transformed_count(self) -> int:
        return self.result.transformed_count if self.result else 0

    @property
    def candidates(self) -> int:
        return self.result.candidates if self.result else 0

    @property
    def overflows_prevented(self) -> int:
        return self.validation.overflows_prevented if self.validation \
            else 0

    @property
    def rejected(self) -> bool:
        return self.status == CANDIDATE_REJECTED

    def verdict_summary(self) -> str:
        if self.status == CANDIDATE_ERROR:
            return "error"
        if self.status == CANDIDATE_SKIPPED:
            return "breaker open"
        # A rejected candidate the oracle never judged (its transformed
        # text did not parse, or the judge itself failed) must surface
        # its rejection reason — labelling it "unjudged" hid the parse
        # failure from the report table and scoreboard.
        if self.rejected and self.validation is None:
            return f"rejected: {self.reason}"
        if not self.changed:
            return "skip"
        if self.validation is None:
            return "unjudged"
        return self.validation.summary()

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "status": self.status,
            "reason": self.reason,
            "sites": [self.transformed_count, self.candidates],
            "changed": self.changed,
            "parses": self.parses,
            "verdicts": self.validation.counts()
            if self.validation is not None else None,
        }


@dataclass
class SiteDecision:
    """Per-site verdict of site-mode arbitration: which backend won one
    call site of the composite, or why the site stayed unfixed."""

    function: str
    target: str
    line: int
    winner: str | None = None
    composed: bool = False
    reason: str = ""
    overflows_prevented: int = 0
    #: Backend ids that offered an eligible fix for this site, best first.
    candidates: tuple[str, ...] = ()

    @property
    def site(self) -> str:
        return f"{self.function}:{self.line}:{self.target}"

    def as_dict(self) -> dict:
        return {"site": self.site, "function": self.function,
                "line": self.line, "target": self.target,
                "winner": self.winner, "composed": self.composed,
                "reason": self.reason,
                "overflows_prevented": self.overflows_prevented,
                "candidates": list(self.candidates)}


@dataclass
class ArbitrationReport:
    """Per-file outcome of the backend search: every candidate, the
    winner, and why the rest lost."""

    filename: str
    backends: tuple[str, ...]
    candidates: list[BackendCandidate] = field(default_factory=list)
    winner: str | None = None
    #: ``file`` (whole-file winner-take-all) or ``site`` (per-site
    #: composition); site-mode-only fields stay out of :meth:`as_dict`
    #: in file mode so the PR 6 JSON shape is unchanged.
    mode: str = "file"
    sites: list[SiteDecision] = field(default_factory=list)
    #: Site mode only: ``shipped`` when the composite won, otherwise a
    #: ``degraded: ...`` rung of the degradation ladder.
    composite_status: str = ""

    @property
    def attempted(self) -> int:
        """Backends that actually ran (errors included, breaker skips
        excluded — a skipped backend never executed)."""
        return sum(1 for c in self.candidates
                   if c.status != CANDIDATE_SKIPPED)

    @property
    def rejected(self) -> int:
        """Candidates the judge disqualified (semantics-changed or a
        transformed text that no longer parses)."""
        return sum(1 for c in self.candidates if c.rejected)

    def candidate_for(self, backend_id: str) -> BackendCandidate | None:
        for candidate in self.candidates:
            if candidate.backend == backend_id:
                return candidate
        return None

    @property
    def winning_candidate(self) -> BackendCandidate | None:
        return self.candidate_for(self.winner) if self.winner else None

    def site_winner_counts(self) -> dict[str, int]:
        """backend id -> number of sites it won in the composite."""
        counts: dict[str, int] = {}
        for decision in self.sites:
            if decision.composed and decision.winner:
                counts[decision.winner] = counts.get(decision.winner, 0) + 1
        return counts

    def as_dict(self) -> dict:
        out = {"filename": self.filename,
               "backends": list(self.backends),
               "winner": self.winner,
               "candidates": [c.as_dict() for c in self.candidates]}
        if self.mode != "file":
            out["mode"] = self.mode
            out["sites"] = [d.as_dict() for d in self.sites]
            out["composite_status"] = self.composite_status
        return out


def candidate_score(candidate: BackendCandidate,
                    order_index: int) -> tuple:
    """The arbitration ordering, descending (max wins).

    ``overflow-prevented`` counts dominate (a fix that demonstrably
    stops a smash beats one that merely leaves behaviour identical),
    then the number of sites actually transformed, then *fewer* benign
    truncation divergences; the final component prefers the backend
    listed first, which makes the whole ordering total and the winner
    deterministic at any worker count.
    """
    validation = candidate.validation
    benign = validation.counts().get(VERDICT_BENIGN, 0) \
        if validation is not None else 0
    return (candidate.overflows_prevented,
            candidate.transformed_count,
            -benign,
            -order_index)


def _judge(original: str, candidate_text: str, filename: str,
           inputs: list[DifferentialInput]) -> ValidationReport:
    return validate_pair(original, candidate_text, filename=filename,
                         inputs=inputs)


def arbitrate_file(text: str, filename: str,
                   backends: tuple[str, ...], *,
                   session: AnalysisSession | None = None,
                   fuzz_seed: int | None = None,
                   diagnostics: list | None = None,
                   arbitration: str = "file"
                   ) -> tuple[str, bool, ValidationReport | None,
                              ArbitrationReport]:
    """Apply every backend in ``backends`` to ``text``, judge each
    candidate with the differential oracle, and select the best fix.

    Returns ``(final text, parses, winner validation, report)``.  The
    final text is the winning candidate's output, or the input verbatim
    when no valid candidate changed anything — arbitration can only
    ever improve a file, never degrade it.

    ``arbitration="site"`` refines the selection from whole files to
    call sites: each transformed site of each candidate is replayed in
    isolation, judged, and the best backend per site is composed into
    one file through a shared conflict-checked rewriter; the composite
    is re-judged and ships only when it parses, has zero
    ``semantics-changed`` divergences, and prevents strictly more
    overflow probes than the best whole-file candidate — otherwise the
    search degrades to exactly the ``file``-mode answer.

    Fault isolation matches the PR 5 contract: a backend that raises is
    contained as a ``CANDIDATE_ERROR`` (with a
    :class:`~repro.core.diagnostics.FileDiagnostic` appended to
    ``diagnostics`` when a list is given) and the search continues with
    the remaining backends — the next-best candidate wins.  Injected
    whole-process faults (``BaseException`` subclasses) still propagate.
    """
    from . import faults, profile
    from .diagnostics import diagnostic_from_exception

    session = session if session is not None else get_session()
    arbitration = resolve_arbitration(arbitration)
    inputs = default_inputs(filename, seed=fuzz_seed)
    report = ArbitrationReport(filename, tuple(backends),
                               mode=arbitration)
    breakers_on = breaker_threshold() > 0
    for backend_id in backends:
        breaker = _breaker_for(backend_id) if breakers_on else None
        if breaker is not None and breaker.should_skip(backend_id):
            report.candidates.append(BackendCandidate(
                backend_id, None, status=CANDIDATE_SKIPPED,
                reason=f"circuit breaker open; "
                       f"{breaker.cooldown_left + 1} file(s) until "
                       f"half-open trial"))
            continue
        with profile.stage(backend_id):
            try:
                faults.check(backend_id, filename)
                result = cached_backend_run(backend_id, text, filename,
                                            session)
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
                report.candidates.append(BackendCandidate(
                    backend_id, None, status=CANDIDATE_ERROR,
                    reason=reason))
                if diagnostics is not None:
                    diagnostics.append(diagnostic_from_exception(
                        backend_id, filename, exc))
                if breaker is not None:
                    breaker.record_failure(backend_id, reason)
                continue
        candidate = BackendCandidate(backend_id, result)
        if result.candidates == 0:
            candidate.status = CANDIDATE_NOT_APPLICABLE
            candidate.reason = "no candidate sites"
        elif not result.changed:
            candidate.status = CANDIDATE_NO_CHANGE
            candidate.reason = "no site passed its preconditions"
        else:
            with profile.stage("verify"):
                candidate.parses = session.check_parses(
                    result.new_text, filename)
            if not candidate.parses:
                candidate.status = CANDIDATE_REJECTED
                candidate.reason = "transformed text does not parse"
            else:
                try:
                    faults.check("validate", filename)
                    # Judge wall time belongs to the validate stage
                    # (check_parses above is charged to verify); without
                    # the wrapper it leaked into the parent stage.
                    with profile.stage("validate"):
                        candidate.validation = _judge(
                            text, result.new_text, filename, inputs)
                except Exception as exc:
                    candidate.status = CANDIDATE_REJECTED
                    candidate.reason = (f"judge failed: "
                                        f"{type(exc).__name__}: {exc}")
                    if diagnostics is not None:
                        diagnostics.append(diagnostic_from_exception(
                            "validate", filename, exc))
                else:
                    if candidate.validation.semantics_changed:
                        candidate.status = CANDIDATE_REJECTED
                        candidate.reason = (
                            f"{candidate.validation.semantics_changed} "
                            f"semantics-changed divergence(s)")
                    else:
                        candidate.status = CANDIDATE_RUNNER_UP
        report.candidates.append(candidate)
        if breaker is not None:
            # Operational failures (the backend's output did not parse,
            # or the judge itself errored) feed the breaker; a
            # semantics-changed rejection is the oracle working as
            # designed and counts as a healthy run.
            if candidate.status == CANDIDATE_REJECTED \
                    and candidate.validation is None:
                breaker.record_failure(backend_id, candidate.reason)
            else:
                breaker.record_success()

    eligible = [(index, candidate)
                for index, candidate in enumerate(report.candidates)
                if candidate.status == CANDIDATE_RUNNER_UP]
    file_best = max(eligible,
                    key=lambda pair: candidate_score(pair[1], pair[0]))[1] \
        if eligible else None

    if arbitration == "site":
        composite = _compose_sites(text, filename, inputs, session,
                                   report, file_best, diagnostics)
        if composite is not None:
            report.candidates.append(composite)
            report.winner = composite.backend
            return (composite.result.new_text, True,
                    composite.validation, report)

    if file_best is not None:
        file_best.status = CANDIDATE_SELECTED
        report.winner = file_best.backend
        return (file_best.result.new_text, True, file_best.validation,
                report)
    return text, True, None, report


@dataclass
class _SiteFix:
    """One backend's eligible single-site candidate during composition."""

    backend: str
    order_index: int
    outcome: object                     # SiteOutcome
    finalize_edits: tuple
    text: str
    validation: ValidationReport
    score: tuple


def _compose_sites(text: str, filename: str,
                   inputs: list[DifferentialInput],
                   session: AnalysisSession,
                   report: ArbitrationReport,
                   file_best: BackendCandidate | None,
                   diagnostics: list | None) -> BackendCandidate | None:
    """Site-mode phase 2: pick the best backend per call site, merge the
    winning edits conflict-aware, re-judge the composite.

    Returns the shipped composite candidate, or ``None`` after recording
    the degradation rung in ``report.composite_status`` — the caller
    then falls back to the PR 6 whole-file winner.
    """
    from . import faults, profile
    from .diagnostics import diagnostic_from_exception
    from ..cfront.rewriter import Rewriter, RewriteConflict
    from .transform import sort_outcomes

    # ---- per-site candidates: replay, parse-check, judge each in isolation
    per_site: dict[tuple, list[_SiteFix]] = {}
    for order_index, candidate in enumerate(report.candidates):
        result = candidate.result
        if result is None or not candidate.changed:
            continue
        backend = get_backend(candidate.backend)
        occurrence: dict[tuple, int] = {}
        for outcome in result.outcomes:
            if not outcome.transformed or not outcome.edits:
                continue
            identity = (outcome.function, outcome.line, outcome.target)
            occ = occurrence.get(identity, 0)
            occurrence[identity] = occ + 1
            site = identity + (occ,)
            try:
                site_text = _SITE_CACHE.get_or_build(
                    site_cache_key(backend, site, text),
                    lambda o=outcome: _build_site_text(
                        text, o.edits, result.finalize_edits))
                if site_text == text:
                    continue
                with profile.stage("verify"):
                    if not session.check_parses(site_text, filename):
                        continue
                faults.check("validate", filename)
                with profile.stage("validate"):
                    validation = _judge(text, site_text, filename, inputs)
            except Exception as exc:
                if diagnostics is not None:
                    diagnostics.append(diagnostic_from_exception(
                        "site", filename, exc))
                continue
            if validation.semantics_changed:
                continue
            probe = BackendCandidate(
                candidate.backend,
                TransformResult(result.transformation, text, site_text,
                                [outcome], backend=candidate.backend),
                validation=validation)
            per_site.setdefault(site, []).append(_SiteFix(
                candidate.backend, order_index, outcome,
                result.finalize_edits, site_text, validation,
                candidate_score(probe, order_index)))

    if not per_site:
        report.composite_status = "degraded: no composable site"
        return None

    # ---- compose: best site first, per site best backend first; a
    # conflicting edit set falls back to the site's next-ranked backend.
    ranked_sites = sorted(
        per_site.items(),
        key=lambda item: (tuple(-part for part in
                                max(fix.score for fix in item[1])),
                          item[0]))
    rewriter = Rewriter(text)
    finalize_for: dict[str, tuple] = {}
    won_outcomes = []
    for site, fixes in ranked_sites:
        fixes.sort(key=lambda fix: fix.score, reverse=True)
        function, line, target, _occ = site
        placed = None
        for rank, fix in enumerate(fixes):
            mark = rewriter.checkpoint()
            try:
                for start, end, replacement in fix.outcome.edits:
                    rewriter.replace_range(start, end, replacement)
            except (RewriteConflict, ValueError):
                rewriter.rollback(mark)
                continue
            placed = (rank, fix)
            break
        offered = tuple(fix.backend for fix in fixes)
        if placed is None:
            report.sites.append(SiteDecision(
                function, target, line, composed=False,
                reason="every candidate conflicts with an "
                       "already-composed site",
                candidates=offered))
            continue
        rank, fix = placed
        finalize_for.setdefault(fix.backend, fix.finalize_edits)
        won_outcomes.append(fix.outcome)
        report.sites.append(SiteDecision(
            function, target, line, winner=fix.backend, composed=True,
            reason="" if rank == 0 else
                   f"fell back from {fixes[0].backend} on edit conflict",
            overflows_prevented=fix.validation.overflows_prevented,
            candidates=offered))

    if not won_outcomes:
        report.composite_status = "degraded: no site composed"
        return None

    for backend_id in report.backends:
        edits = finalize_for.get(backend_id)
        if not edits:
            continue
        mark = rewriter.checkpoint()
        try:
            for start, end, replacement in edits:
                rewriter.replace_range(start, end, replacement)
        except (RewriteConflict, ValueError):
            rewriter.rollback(mark)
            report.composite_status = (f"degraded: finalize edits of "
                                       f"{backend_id} conflict")
            return None
    composite_text = rewriter.apply()

    # ---- re-judge the composite; any rung failing degrades to file mode
    with profile.stage("verify"):
        if not session.check_parses(composite_text, filename):
            report.composite_status = "degraded: composite does not parse"
            return None
    try:
        faults.check("validate", filename)
        with profile.stage("validate"):
            validation = _judge(text, composite_text, filename, inputs)
    except Exception as exc:
        if diagnostics is not None:
            diagnostics.append(diagnostic_from_exception(
                "validate", filename, exc))
        report.composite_status = (f"degraded: composite judge failed: "
                                   f"{type(exc).__name__}")
        return None
    if validation.semantics_changed:
        report.composite_status = (
            f"degraded: composite has {validation.semantics_changed} "
            f"semantics-changed divergence(s)")
        return None
    file_prevented = file_best.overflows_prevented \
        if file_best is not None else 0
    if file_best is not None and \
            validation.overflows_prevented <= file_prevented:
        report.composite_status = (
            f"degraded: composite prevents "
            f"{validation.overflows_prevented} overflow probe(s), "
            f"whole-file winner {file_best.backend} prevents "
            f"{file_prevented}")
        return None

    report.composite_status = "shipped"
    summary = " ".join(f"{backend}:{count}" for backend, count in
                       sorted(report.site_winner_counts().items()))
    return BackendCandidate(
        COMPOSITE_BACKEND,
        TransformResult("COMPOSITE", text, composite_text,
                        sort_outcomes(list(won_outcomes)),
                        backend=COMPOSITE_BACKEND),
        parses=True, validation=validation,
        status=CANDIDATE_SELECTED,
        reason=f"composed {summary}")


def scoreboard(reports: list[ArbitrationReport]
               ) -> dict[str, dict[str, int]]:
    """Aggregate per-backend tallies over many files' arbitrations.

    ``attempted`` counts files the backend ran on, ``selected`` files it
    won, ``rejected`` candidates the judge disqualified,
    ``overflow_prevented`` the total prevented-overflow probe verdicts
    across its (judged) candidates, and ``breaker_skips`` files the
    backend's open circuit breaker sat out (those are *not* attempts).  When any report ran in site mode,
    every row additionally carries ``sites_won`` — composite call sites
    the backend contributed — so the per-site winner breakdown survives
    aggregation (file-mode boards keep the PR 6 shape exactly).
    """
    site_mode = any(report.mode == "site" for report in reports)
    board: dict[str, dict[str, int]] = {}

    def row_for(backend: str) -> dict[str, int]:
        row = board.setdefault(backend, {
            "attempted": 0, "changed": 0, "selected": 0,
            "runner_up": 0, "rejected": 0, "no_change": 0,
            "not_applicable": 0, "errors": 0, "breaker_skips": 0,
            "overflow_prevented": 0, "sites_transformed": 0,
        })
        if site_mode:
            row.setdefault("sites_won", 0)
        return row

    for report in reports:
        for candidate in report.candidates:
            row = row_for(candidate.backend)
            if candidate.status == CANDIDATE_SKIPPED:
                row["breaker_skips"] += 1
                continue            # never ran: not an attempt
            row["attempted"] += 1
            row["changed"] += int(candidate.changed)
            row["sites_transformed"] += candidate.transformed_count
            row["overflow_prevented"] += candidate.overflows_prevented
            key = {CANDIDATE_SELECTED: "selected",
                   CANDIDATE_RUNNER_UP: "runner_up",
                   CANDIDATE_REJECTED: "rejected",
                   CANDIDATE_NO_CHANGE: "no_change",
                   CANDIDATE_NOT_APPLICABLE: "not_applicable",
                   CANDIDATE_ERROR: "errors"}[candidate.status]
            row[key] += 1
        for backend, count in report.site_winner_counts().items():
            if report.winner == COMPOSITE_BACKEND:
                row_for(backend)["sites_won"] += count
    return board
