"""Batch application of the transformations to whole programs.

The paper evaluates SLR/STR by applying them *on all possible targets* in
benchmark and open-source programs (§IV).  This module provides the
program model (a named set of C source files plus headers) and a
pluggable batch driver: files are preprocessed and parsed through the
shared :class:`~repro.core.session.AnalysisSession` (content-keyed, so
no stage re-parses text another stage already processed), transformed by
SLR and/or STR, verified to still parse (the paper's "no compilation
errors" check), and aggregated with per-file wall time and cache-hit
counters.

Execution is pluggable: :class:`SerialExecutor` runs in-process;
:class:`ProcessPoolExecutor` fans files out over a ``multiprocessing``
fork pool (``jobs=N`` / ``REPRO_JOBS``).  Both produce byte-identical
results — tasks are ordered by filename and the pool preserves input
order — so a parallel run differs from a serial one only in wall clock.
Dispatch is a *streaming work queue*: the pool pulls tasks from a lazy
source no more than ``REPRO_STREAM_WINDOW`` files ahead of emission and
streams results back in input order as they complete, so the parent's
working set is O(jobs + window), not O(batch).  :func:`apply_batch`
collects the stream into a :class:`BatchResult`; :func:`stream_batch`
exposes it directly for batch sizes where retaining every report is the
bottleneck (the 10k-file bench legs run this way).

The whole pipeline is *fault-isolated*: every stage (preprocess, parse,
SLR, STR, verify, validate) runs inside a guard that converts an
exception into a structured
:class:`~repro.core.diagnostics.FileDiagnostic` on the file's report.
Failures degrade gracefully — an STR crash still ships the SLR result,
a failed SLR call site is skipped, a file that cannot be processed at
all ships its input verbatim as a ``failed`` report — so one broken
file never takes down a batch.  The fork pool adds worker supervision:
a per-task wall-clock watchdog (``REPRO_TASK_TIMEOUT``), dead-worker
detection with automatic respawn, and bounded retry
(``REPRO_TASK_RETRIES``); results stay deterministic and input-ordered
through all of it.  :mod:`repro.core.faults` can inject failures at any
stage for chaos testing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
import warnings
from dataclasses import dataclass, field

from ..cfront.cache import CacheStats, ContentCache, content_key, \
    snapshot_stats
from ..cfront.source import count_source_lines
from . import faults, profile
from .diagnostics import (
    KIND_QUARANTINED, KIND_TIMEOUT, KIND_WORKER_DIED, STATUS_FAILED,
    STATUS_OK, STATUS_QUARANTINED, FileDiagnostic,
    diagnostic_from_exception, status_of, supervisor_diagnostic,
)
from .backends import (  # noqa: F401 (re-exported arbitration helpers)
    ARBITRATION_VERSION, CANDIDATE_ERROR, COMPOSITE_BACKEND,
    ArbitrationReport, arbitrate_file, arbitration_from_env,
    backends_from_env, reset_breakers, resolve_arbitration,
    resolve_backends, scoreboard,
)
from .session import AnalysisSession, get_session
from .slr import SafeLibraryReplacement
from .strtransform import SafeTypeReplacement
from .transform import TransformResult
from .validate import ValidationReport, default_inputs, validate_pair


def default_jobs() -> int:
    """Worker count when the caller does not pass one (``REPRO_JOBS``).

    Rejects non-integer and non-positive values with a warning (a bad
    knob must not silently serialize a production run), and caps the
    answer at the machine's CPU count — more fork workers than cores
    only adds memory pressure and scheduler churn.
    """
    raw = os.environ.get("REPRO_JOBS", "1")
    try:
        jobs = int(raw)
    except ValueError:
        warnings.warn(f"ignoring non-integer REPRO_JOBS={raw!r}; "
                      f"running with 1 worker", RuntimeWarning,
                      stacklevel=2)
        return 1
    if jobs <= 0:
        warnings.warn(f"ignoring REPRO_JOBS={jobs} (must be >= 1); "
                      f"running with 1 worker", RuntimeWarning,
                      stacklevel=2)
        return 1
    return min(jobs, os.cpu_count() or 1)


def task_timeout() -> float | None:
    """Per-task wall-clock budget for supervised pool workers
    (``REPRO_TASK_TIMEOUT`` seconds; unset/0 disables the watchdog)."""
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "")
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(f"ignoring non-numeric REPRO_TASK_TIMEOUT={raw!r}",
                      RuntimeWarning, stacklevel=2)
        return None
    return value if value > 0 else None


def task_retries() -> int:
    """How many times a crashed/timed-out task is retried before it is
    recorded as failed (``REPRO_TASK_RETRIES``, default 1)."""
    raw = os.environ.get("REPRO_TASK_RETRIES", "1")
    try:
        return max(0, int(raw))
    except ValueError:
        warnings.warn(f"ignoring non-integer REPRO_TASK_RETRIES={raw!r}; "
                      f"using 1", RuntimeWarning, stacklevel=2)
        return 1


def stream_window(jobs: int) -> int:
    """Dispatch-ahead bound for the streaming scheduler
    (``REPRO_STREAM_WINDOW``): how many tasks may be pulled from the
    task source but not yet emitted.  This is the parent's working-set
    bound — task texts and out-of-order results are held for at most
    ``window`` files — and the reorder budget that keeps emission
    input-ordered while workers complete out of order.  The default
    scales with the worker count so the pool never idles waiting for
    the emission head.
    """
    from .envknobs import int_knob
    return int_knob("REPRO_STREAM_WINDOW", max(16, 4 * max(1, jobs)))


def dedup_window() -> int:
    """How many representative reports the streaming batch retains for
    content deduplication (``REPRO_DEDUP_WINDOW``, default 4096).  A
    duplicate file whose representative was already evicted is simply
    recomputed — correctness never depends on the window, only the
    dedup hit rate does."""
    from .envknobs import int_knob
    return int_knob("REPRO_DEDUP_WINDOW", 4096)


@dataclass
class SourceProgram:
    """A C program: source files, private headers, predefined macros."""

    name: str
    files: dict[str, str]                       # .c file name -> text
    headers: dict[str, str] = field(default_factory=dict)
    predefined: dict[str, str] = field(default_factory=dict)
    main_file: str | None = None
    preprocessed: bool = False                  # files already preprocessed
    _pp_memo: "SourceProgram | None" = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def file_count(self) -> int:
        return len(self.files)

    def kloc(self) -> float:
        """Source KLOC over the .c files (blank lines excluded)."""
        return sum(count_source_lines(text)
                   for text in self.files.values()) / 1000.0

    def preprocess(self, session: AnalysisSession | None = None,
                   *, timings: dict[str, float] | None = None
                   ) -> "SourceProgram":
        """Preprocess every file; returns a new, preprocessed program.

        Memoized on the instance (Tables III–VI all query it, some more
        than once) and served from the session's content-keyed cache, so
        identical file text is only ever preprocessed once per process.
        ``timings`` (when given) receives per-file wall seconds for the
        stage profiler.
        """
        if self.preprocessed:
            return self
        if self._pp_memo is not None:
            return self._pp_memo
        session = session if session is not None else get_session()
        out = {}
        for filename, text in self.files.items():
            start = time.perf_counter()
            out[filename] = session.preprocess(text, filename,
                                               self.headers,
                                               self.predefined).text
            if timings is not None:
                timings[filename] = time.perf_counter() - start
        self._pp_memo = SourceProgram(self.name, out, {}, {},
                                      self.main_file, preprocessed=True)
        return self._pp_memo

    def pp_kloc(self) -> float:
        """Preprocessed KLOC (the paper's 'PP KLOC' column)."""
        return self.preprocess().kloc()


@dataclass(frozen=True)
class FileTask:
    """One file's transformation work order (picklable for the pool)."""

    filename: str
    text: str                                   # preprocessed text
    run_slr: bool = True
    run_str: bool = True
    profile: str = "glib"
    validate: bool = False                      # run the diff oracle
    fuzz_seed: int | None = None                # None = env/default seed
    #: Backend arbitration: when set, the legacy SLR→STR chain is
    #: replaced by :func:`repro.core.backends.arbitrate_file` over this
    #: backend id tuple (the oracle always judges in this mode).
    backends: tuple[str, ...] | None = None
    #: Arbitration mode: ``file`` (whole-file winner, PR 6 behaviour) or
    #: ``site`` (per-site composition); only meaningful with ``backends``.
    arbitration: str = "file"


@dataclass
class FileTransformReport:
    """One file's outcome, shipped back from whichever process ran it.

    ``status`` is ``ok`` (every requested stage succeeded), ``degraded``
    (some stage failed but a partial result shipped — e.g. STR died and
    SLR's output was kept), or ``failed`` (no transformation survived;
    ``final_text`` is the input, verbatim).  Contained failures are
    recorded on ``diagnostics``; ``parses`` covers only text the
    pipeline actually changed — a file shipped verbatim after a failure
    introduces no compile errors by construction.
    """

    filename: str
    slr: TransformResult | None
    str_: TransformResult | None
    final_text: str
    parses: bool
    wall_time: float = 0.0                      # seconds, in the worker
    validation: "ValidationReport | None" = None
    stage_times: dict[str, float] = field(default_factory=dict)
    status: str = STATUS_OK
    diagnostics: list[FileDiagnostic] = field(default_factory=list)
    #: Backend-arbitration outcome (``slr``/``str_`` stay ``None`` in
    #: that mode; the winner's oracle report lands on ``validation``).
    arbitration: ArbitrationReport | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


#: Whole-stage transform results, persisted across runs: an SLR/STR pass
#: is a pure function of (input text, profile, tool version), so a warm
#: process skips parsing *and* transforming texts any run has seen.
_SLR_CACHE = ContentCache("slr", family="slr")
_STR_CACHE = ContentCache("str", family="str")


def cached_slr(text: str, filename: str, profile_name: str = "glib",
               session: AnalysisSession | None = None) -> TransformResult:
    """Run (or replay) SLR over ``text``; results must be treated as
    immutable — the same object serves every caller."""
    key = content_key("slr", profile_name, text)
    return _SLR_CACHE.get_or_build(
        key, lambda: SafeLibraryReplacement(
            text, filename, profile=profile_name, session=session).run())


def cached_str(text: str, filename: str,
               session: AnalysisSession | None = None) -> TransformResult:
    """Run (or replay) STR over ``text``."""
    key = content_key("str", text)
    return _STR_CACHE.get_or_build(
        key, lambda: SafeTypeReplacement(
            text, filename, session=session).run())


def transform_file(task: FileTask,
                   session: AnalysisSession | None = None
                   ) -> FileTransformReport:
    """Run the SLR→STR chain over one preprocessed file, fault-isolated.

    When SLR queues no edits, STR's parse of the "new" text is a cache
    hit on SLR's input unit — the chain only rebuilds what changed.
    With ``task.validate`` set, the differential oracle then executes
    the original vs. transformed text on the standard probe set; the
    probe inputs depend only on filename and seed, so verdicts are
    byte-identical at any worker count.  Per-stage wall times land on
    the report's ``stage_times`` (exclusive, so they sum to the file's
    wall time).

    Every stage runs inside a guard: an exception becomes a
    :class:`~repro.core.diagnostics.FileDiagnostic` on the report and
    the chain degrades instead of propagating — an STR failure still
    ships the SLR result, a failed SLR leaves the text for STR, a
    failed oracle leaves the transform (unvalidated).  Only the
    injected whole-process faults (:class:`~repro.core.faults
    .InjectedKill` / ``InjectedHang``, ``BaseException`` subclasses)
    abort the file, mirroring what a real worker death looks like.
    """
    session = session if session is not None else get_session()
    start = time.perf_counter()
    diagnostics: list[FileDiagnostic] = []
    arbitration: ArbitrationReport | None = None
    with profile.collect(task.filename) as stage_times:
        try:
            if task.backends:
                slr_result = str_result = None
                text, parses, validation, arbitration = arbitrate_file(
                    task.text, task.filename, task.backends,
                    session=session, fuzz_seed=task.fuzz_seed,
                    diagnostics=diagnostics,
                    arbitration=task.arbitration)
            else:
                slr_result, str_result, text, parses, validation = \
                    _run_stages(task, session, diagnostics)
        except (faults.InjectedKill, faults.InjectedHang) as exc:
            kind = KIND_WORKER_DIED if isinstance(exc, faults.InjectedKill) \
                else KIND_TIMEOUT
            return FileTransformReport(
                task.filename, None, None, task.text, True,
                time.perf_counter() - start, None, dict(stage_times),
                status=STATUS_FAILED,
                diagnostics=[supervisor_diagnostic(task.filename, kind,
                                                   str(exc))])
    if task.backends:
        # Arbitration produced something as long as at least one backend
        # ran to a judged (or inapplicable) candidate.
        produced = any(c.status != CANDIDATE_ERROR
                       for c in arbitration.candidates)
    else:
        produced = (slr_result is not None or str_result is not None
                    or not (task.run_slr or task.run_str))
    # A text that does not parse fails SLR and STR with the *same*
    # reattributed parse error; one record carries all the signal.
    seen: set[tuple[str, str, str, str]] = set()
    diagnostics = [d for d in diagnostics
                   if (key := (d.stage, d.kind, d.message, d.location))
                   not in seen and not seen.add(key)]
    return FileTransformReport(task.filename, slr_result, str_result,
                               text, parses,
                               time.perf_counter() - start, validation,
                               dict(stage_times),
                               status=status_of(diagnostics, produced),
                               diagnostics=diagnostics,
                               arbitration=arbitration)


def _run_stages(task: FileTask, session: AnalysisSession,
                diagnostics: list[FileDiagnostic]):
    """The guarded SLR → STR → verify → validate chain for one file."""
    text = task.text
    slr_result: TransformResult | None = None
    str_result: TransformResult | None = None
    if task.run_slr:
        with profile.stage("slr"):
            try:
                faults.check("slr", task.filename)
                slr_result = cached_slr(text, task.filename,
                                        task.profile, session)
                text = slr_result.new_text
            except Exception as exc:
                diagnostics.append(diagnostic_from_exception(
                    "slr", task.filename, exc))
    if task.run_str:
        with profile.stage("str"):
            try:
                faults.check("str", task.filename)
                str_result = cached_str(text, task.filename, session)
                text = str_result.new_text
            except Exception as exc:
                diagnostics.append(diagnostic_from_exception(
                    "str", task.filename, exc))
    changed = text != task.text
    with profile.stage("verify"):
        try:
            faults.check("verify", task.filename)
            if changed:
                _unit, parse_error = session.try_parse(text, task.filename)
                parses = parse_error is None
                if parse_error is not None:
                    diagnostics.append(diagnostic_from_exception(
                        "verify", task.filename, parse_error))
            else:
                # Nothing was edited: the output cannot have gained a
                # compile error the input did not already have.
                parses = True
        except Exception as exc:
            diagnostics.append(diagnostic_from_exception(
                "verify", task.filename, exc))
            parses = not changed
    validation: ValidationReport | None = None
    if task.validate and parses:
        try:
            faults.check("validate", task.filename)
            validation = validate_pair(
                task.text, text, filename=task.filename,
                inputs=default_inputs(task.filename, seed=task.fuzz_seed))
        except Exception as exc:
            diagnostics.append(diagnostic_from_exception(
                "validate", task.filename, exc))
    return slr_result, str_result, text, parses, validation


# ------------------------------------------------------------- executors

def _empty_supervision() -> dict[str, int]:
    return {"retries": 0, "timeouts": 0, "worker_deaths": 0,
            "respawns": 0}


class SerialExecutor:
    """Run every task in the calling process, in task order."""

    jobs = 1

    def __init__(self):
        self.supervision = _empty_supervision()
        self.max_inflight = 0

    def map(self, tasks: list[FileTask]) -> list[FileTransformReport]:
        return [transform_file(task) for task in tasks]

    def imap(self, tasks, *, window: int | None = None):
        """Stream ``(index, report)`` pairs in task order; the task
        source is consumed one task at a time, so parent memory never
        holds more than the in-flight file."""
        for index, task in enumerate(tasks):
            self.max_inflight = max(self.max_inflight, 1)
            yield index, transform_file(task)


#: How often an idle pool worker wakes to check it has not been
#: orphaned by a dead scheduler.
_ORPHAN_POLL_S = 1.0


def _pool_worker(inbox, result_queue) -> None:
    """Supervised-pool worker loop: pull tasks from this worker's own
    inbox until the ``None`` sentinel, ship each report back pre-pickled.

    Two protocol choices keep supervision race-free.  The parent assigns
    tasks to a *specific* worker's inbox and records the assignment
    before sending, so it always knows exactly which task a dead worker
    was holding — no "I started X" message that an abrupt ``os._exit``
    could lose in a feeder thread.  And results go over a ``SimpleQueue``
    (synchronous send): once ``put`` returns, the bytes are in the pipe,
    so a worker that dies between tasks cannot strand a completed result
    in a buffer.  Pre-pickling converts an unpicklable report into an
    ordinary contained failure instead of an invisible serialization
    error.

    Idle waits poll rather than block: if the scheduler process dies
    without cleanup (crash, SIGKILL, an injected ``parent-kill`` fault),
    the worker notices its reparenting and exits instead of blocking on
    the inbox forever — a crashed batch must not leak a pool of orphaned
    workers holding the terminal's pipes open.
    """
    faults.mark_worker()
    parent = os.getppid()
    reader = getattr(inbox, "_reader", None)
    while True:
        try:
            if reader is not None:
                while not reader.poll(_ORPHAN_POLL_S):
                    if os.getppid() != parent:
                        os._exit(0)         # scheduler died; orphaned
            item = inbox.get()
        except (EOFError, OSError):
            os._exit(0)                     # inbox torn down under us
        if item is None:
            return
        index, task = item
        try:
            report = transform_file(task)
        except BaseException as exc:    # last-ditch: never lose a task
            report = _supervisor_report(task, KIND_WORKER_DIED,
                                        f"worker raised "
                                        f"{type(exc).__name__}: {exc}")
        try:
            payload = pickle.dumps(report,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            payload = pickle.dumps(_supervisor_report(
                task, KIND_WORKER_DIED,
                f"report not picklable: {type(exc).__name__}: {exc}"))
        result_queue.put((index, payload))


def _supervisor_report(task: FileTask, kind: str, message: str, *,
                       retries: int = 0) -> FileTransformReport:
    """The failed report for a task whose worker died or timed out:
    input shipped verbatim, one ``worker``-stage diagnostic."""
    return FileTransformReport(
        task.filename, None, None, task.text, True, 0.0, None, {},
        status=STATUS_FAILED,
        diagnostics=[supervisor_diagnostic(task.filename, kind, message,
                                           retries=retries)])


class ProcessPoolExecutor:
    """Fan tasks out over a *supervised* ``multiprocessing`` fork pool.

    Workers are forked, so they inherit the parent's warmed default
    session (copy-on-write) — a pre-warmed cache benefits every worker.
    Result order matches task order, making parallel output
    byte-identical to serial.  Falls back to serial execution where the
    fork start method is unavailable.

    Supervision, on top of the plain pool the pipeline used to run:

    * **watchdog** — with ``REPRO_TASK_TIMEOUT`` set, a task holding a
      worker past the budget gets its worker killed and respawned;
    * **dead-worker detection** — a worker that exits (crash, OOM kill,
      injected ``os._exit``) while holding a task is noticed and
      replaced, and its task is not lost;
    * **bounded retry** — a crashed/timed-out task is re-queued up to
      ``REPRO_TASK_RETRIES`` times (short backoff between attempts)
      before it is recorded as a ``failed`` report with a ``worker``
      diagnostic.

    Results stay deterministic: they are keyed by task index, so retries
    and respawns reorder nothing.
    """

    #: Supervisor poll interval: bounds watchdog latency without
    #: busy-waiting the parent.
    POLL_S = 0.05

    def __init__(self, jobs: int, *, timeout: float | None = None,
                 retries: int | None = None):
        self.jobs = max(1, jobs)
        self.timeout = timeout if timeout is not None else task_timeout()
        self.retries = retries if retries is not None else task_retries()
        self.supervision = _empty_supervision()
        self.max_inflight = 0
        self._deaths_to_respawn = 0

    def map(self, tasks: list[FileTask]) -> list[FileTransformReport]:
        if self.jobs == 1 or len(tasks) <= 1:
            serial = SerialExecutor()
            reports = serial.map(tasks)
            self.supervision = serial.supervision
            return reports
        ctx = self._fork_context()
        if ctx is None:
            serial = SerialExecutor()
            reports = serial.map(tasks)
            self.supervision = serial.supervision
            return reports
        # Unbounded window: map() holds every result anyway, so there
        # is nothing to gain from capping dispatch-ahead (and the old
        # eager-dispatch wall clock is preserved exactly).
        return [report for _, report
                in self._stream(ctx, iter(tasks), window=len(tasks))]

    def imap(self, tasks, *, window: int | None = None):
        """Stream ``(index, report)`` pairs back in task order as they
        complete, pulling from ``tasks`` (any iterable) no more than
        ``window`` files ahead of emission.

        This is the streaming work-queue scheduler: the parent's
        working set — unpicked task texts, out-of-order results waiting
        for the emission head, and the workers' in-flight tasks — is
        bounded by the window, so a 10k-file batch costs the parent the
        same memory as a window-sized one.  Supervision (watchdog,
        dead-worker respawn, bounded retry) is identical to
        :meth:`map`; emission order is deterministic input order at any
        worker count.
        """
        if window is None:
            window = stream_window(self.jobs)
        ctx = self._fork_context() if self.jobs > 1 else None
        if ctx is None:
            serial = SerialExecutor()
            yield from serial.imap(tasks)
            self.max_inflight = serial.max_inflight
            return
        yield from self._stream(ctx, iter(tasks), window=max(1, window))

    @staticmethod
    def _fork_context():
        import multiprocessing as mp
        try:
            return mp.get_context("fork")
        except ValueError:
            return None

    # ------------------------------------------------------- supervision

    class _Worker:
        """One supervised worker process plus its private task inbox."""

        __slots__ = ("inbox", "process", "task_index", "started_at")

        def __init__(self, ctx, result_queue):
            self.inbox = ctx.SimpleQueue()
            self.process = ctx.Process(target=_pool_worker,
                                       args=(self.inbox, result_queue),
                                       daemon=True)
            self.process.start()
            self.task_index: int | None = None
            self.started_at = 0.0

        def assign(self, index: int, task: FileTask) -> None:
            self.task_index = index
            self.started_at = time.monotonic()
            self.inbox.put((index, task))

    def _stream(self, ctx, task_iter, *, window: int):
        """The supervised streaming loop behind :meth:`map`/:meth:`imap`.

        ``held`` maps every pulled-but-unemitted index to its task (the
        retry source); ``ready`` holds completed reports waiting for the
        emission head.  Both are bounded by the window, so the parent
        never retains the whole batch.  Workers are spawned on demand —
        at most ``jobs``, and never more than there are tasks to hand
        out — and a spawn that follows a death is counted as a respawn.
        """
        result_queue = ctx.SimpleQueue()
        workers: list[ProcessPoolExecutor._Worker] = []
        held: dict[int, FileTask] = {}
        ready: dict[int, FileTransformReport] = {}
        attempts: dict[int, int] = {}
        pending: list[int] = []
        retry_at: list[tuple[float, int]] = []    # (eligible time, index)
        next_pull = 0                             # drawn from task_iter
        next_emit = 0
        exhausted = False
        self._deaths_to_respawn = 0
        try:
            while True:
                emitted = False
                while next_emit in ready:
                    report = ready.pop(next_emit)
                    held.pop(next_emit, None)
                    attempts.pop(next_emit, None)
                    yield next_emit, report
                    next_emit += 1
                    emitted = True
                if exhausted and next_emit == next_pull:
                    return
                now = time.monotonic()
                for when, index in list(retry_at):
                    if when <= now:
                        retry_at.remove((when, index))
                        pending.append(index)
                while not exhausted and next_pull - next_emit < window:
                    try:
                        task = next(task_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    held[next_pull] = task
                    pending.append(next_pull)
                    next_pull += 1
                self.max_inflight = max(self.max_inflight,
                                        next_pull - next_emit)
                pending.sort()
                for worker in workers:
                    if worker.task_index is None and pending:
                        index = pending.pop(0)
                        worker.assign(index, held[index])
                while pending and len(workers) < self.jobs:
                    worker = self._spawn(ctx, result_queue)
                    workers.append(worker)
                    index = pending.pop(0)
                    worker.assign(index, held[index])
                if not self._drain(result_queue, ready, workers) \
                        and not emitted:
                    time.sleep(self.POLL_S)
                self._check_deadlines(held, ready, attempts, workers,
                                      pending, retry_at)
                workers = self._reap_dead(held, ready, attempts, workers,
                                          pending, retry_at)
        finally:
            for worker in workers:
                if worker.process.is_alive():
                    worker.inbox.put(None)
            for worker in workers:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=2.0)

    def _spawn(self, ctx, result_queue):
        if self._deaths_to_respawn > 0:
            self._deaths_to_respawn -= 1
            self.supervision["respawns"] += 1
        return self._Worker(ctx, result_queue)

    def _drain(self, result_queue, results, workers) -> bool:
        """Collect every completed result currently in the pipe; returns
        whether anything arrived (the caller sleeps briefly if not)."""
        got_any = False
        while not result_queue.empty():
            index, payload = result_queue.get()
            got_any = True
            # setdefault: a task can complete twice when a retry raced a
            # slow first attempt; the compute is deterministic, keep one.
            results.setdefault(index, pickle.loads(payload))
            for worker in workers:
                if worker.task_index == index:
                    worker.task_index = None
        return got_any

    def _check_deadlines(self, held, ready, attempts, workers,
                         pending, retry_at) -> None:
        """Kill workers whose current task exceeded the wall budget."""
        if self.timeout is None:
            return
        now = time.monotonic()
        for worker in workers:
            index = worker.task_index
            if index is None or now - worker.started_at < self.timeout:
                continue
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.task_index = None
            self.supervision["timeouts"] += 1
            self._retry_or_fail(
                held, ready, attempts, pending, retry_at, index,
                KIND_TIMEOUT,
                f"task exceeded REPRO_TASK_TIMEOUT={self.timeout:g}s")

    def _reap_dead(self, held, ready, attempts, workers,
                   pending, retry_at) -> list:
        """Drop dead workers; rescue the tasks they were holding.

        Replacements are spawned by the dispatch loop the moment there
        is pending work for them (counted as respawns via
        ``_deaths_to_respawn``), so an idle tail of the batch never
        forks workers it cannot feed.
        """
        alive = [w for w in workers if w.process.is_alive()]
        if len(alive) == len(workers):
            return workers
        for worker in workers:
            if worker.process.is_alive():
                continue
            worker.process.join(timeout=1.0)
            self._deaths_to_respawn += 1
            index = worker.task_index
            if index is not None and index not in ready:
                self.supervision["worker_deaths"] += 1
                self._retry_or_fail(
                    held, ready, attempts, pending, retry_at, index,
                    KIND_WORKER_DIED,
                    f"worker pid {worker.process.pid} died with exit "
                    f"code {worker.process.exitcode}")
        return alive

    def _retry_or_fail(self, held, ready, attempts, pending, retry_at,
                       index: int, kind: str, message: str) -> None:
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] <= self.retries:
            self.supervision["retries"] += 1
            retry_at.append((time.monotonic()
                             + retry_backoff(attempts[index],
                                             held[index].filename),
                             index))
        else:
            ready[index] = _supervisor_report(
                held[index], kind, message, retries=attempts[index] - 1)


#: Retry backoff bounds for the supervised pool: first retry waits
#: around the base, each further attempt doubles it, and no retry ever
#: waits past the cap.
RETRY_BACKOFF_BASE_S = 0.05
RETRY_BACKOFF_CAP_S = 2.0


def retry_backoff(attempt: int, subject: str) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of ``subject``.

    Exponential (base × 2^(attempt-1)) with *deterministic* per-subject
    jitter in [0.5, 1.5) — a keyed hash of the subject name, not a PRNG
    — and a hard cap.  The jitter de-synchronizes a respawn storm (ten
    tasks orphaned by one dead worker no longer hammer the pool on the
    same tick) while keeping every run's schedule reproducible; the
    exponent stops a repeatedly-dying task from busy-looping the
    supervisor; the cap bounds the latency a transient failure can add.
    """
    base = RETRY_BACKOFF_BASE_S * (2 ** max(0, attempt - 1))
    digest = hashlib.blake2b(f"repro-backoff|{subject}".encode("utf-8"),
                             digest_size=8).digest()
    jitter = 0.5 + int.from_bytes(digest, "big") / float(1 << 64)
    return min(base * jitter, RETRY_BACKOFF_CAP_S)


def make_executor(jobs: int | None = None):
    jobs = default_jobs() if jobs is None else jobs
    return SerialExecutor() if jobs <= 1 else ProcessPoolExecutor(jobs)


# ------------------------------------------------------------- aggregation

@dataclass
class BatchStats:
    """Where the batch spent its time and how the caches fared.

    Cache counters are deltas over the run as seen by *this* process;
    a fork pool's in-worker hits show up in per-file wall times instead
    (worker caches are not merged back).  ``stage_times`` holds each
    file's per-stage breakdown (shipped back from workers, so it is
    complete at any worker count); ``stage_totals`` sums them.
    ``deduplicated`` counts tasks served by another task's result
    because their content was identical.
    """

    jobs: int
    wall_time: float
    file_walls: dict[str, float] = field(default_factory=dict)
    parse: CacheStats = field(default_factory=CacheStats)
    preprocess: CacheStats = field(default_factory=CacheStats)
    slr: CacheStats = field(default_factory=CacheStats)
    str_: CacheStats = field(default_factory=CacheStats)
    validate: CacheStats = field(default_factory=CacheStats)
    backend: CacheStats = field(default_factory=CacheStats)
    stage_times: dict[str, dict[str, float]] = field(default_factory=dict)
    deduplicated: int = 0
    #: Supervision tallies from the executor (fork pool only): tasks
    #: retried, watchdog timeouts, workers that died, workers respawned.
    supervision: dict[str, int] = field(default_factory=_empty_supervision)
    #: Arbitration tallies (zero outside ``--backends`` mode): candidate
    #: runs attempted across all files, and candidates the judge
    #: disqualified (semantics-changed or non-parsing output).
    backends_attempted: int = 0
    backends_rejected: int = 0
    #: Run-journal tallies (zero without ``--resume``/journaling):
    #: files replayed from the journal and files skipped as quarantined.
    replayed: int = 0
    quarantined: int = 0

    @property
    def stage_totals(self) -> dict[str, float]:
        return profile.merge_totals(self.stage_times)

    def as_dict(self) -> dict:
        return {"jobs": self.jobs,
                "wall_time_s": round(self.wall_time, 4),
                "file_walls_s": {name: round(wall, 4)
                                 for name, wall
                                 in sorted(self.file_walls.items())},
                "parse_cache": self.parse.as_dict(),
                "preprocess_cache": self.preprocess.as_dict(),
                "slr_cache": self.slr.as_dict(),
                "str_cache": self.str_.as_dict(),
                "validate_cache": self.validate.as_dict(),
                "backend_cache": self.backend.as_dict(),
                "stage_totals_s": {name: round(seconds, 4)
                                   for name, seconds
                                   in sorted(self.stage_totals.items())},
                "deduplicated": self.deduplicated,
                "supervision": dict(self.supervision),
                "backends_attempted": self.backends_attempted,
                "backends_rejected": self.backends_rejected,
                "replayed": self.replayed,
                "quarantined": self.quarantined}


@dataclass
class BatchResult:
    """Aggregated outcome of batch-transforming one program."""

    program: SourceProgram
    reports: list[FileTransformReport]
    stats: BatchStats | None = None

    @property
    def transformed_program(self) -> SourceProgram:
        return SourceProgram(
            self.program.name + "+fixed",
            {r.filename: r.final_text for r in self.reports},
            {}, {}, self.program.main_file, preprocessed=True)

    def _results(self, which: str) -> list[TransformResult]:
        out = []
        for report in self.reports:
            result = report.slr if which == "SLR" else report.str_
            if result is not None:
                out.append(result)
        return out

    def candidates(self, which: str) -> int:
        return sum(r.candidates for r in self._results(which))

    def transformed(self, which: str) -> int:
        return sum(r.transformed_count for r in self._results(which))

    def percent(self, which: str) -> float:
        total = self.candidates(which)
        if total == 0:
            return 0.0
        return 100.0 * self.transformed(which) / total

    def failures_by_reason(self, which: str) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self._results(which):
            for reason, n in result.failures_by_reason().items():
                counts[reason] = counts.get(reason, 0) + n
        return counts

    def by_target(self, which: str) -> dict[str, tuple[int, int]]:
        stats: dict[str, tuple[int, int]] = {}
        for result in self._results(which):
            for target, (done, total) in result.by_target().items():
                prev_done, prev_total = stats.get(target, (0, 0))
                stats[target] = (prev_done + done, prev_total + total)
        return stats

    @property
    def all_parse(self) -> bool:
        return all(r.parses for r in self.reports)

    # ------------------------------------------------ diagnostic rollups

    def diagnostics(self) -> list[FileDiagnostic]:
        """Every contained failure, in report (filename) order."""
        return [diag for report in self.reports
                for diag in report.diagnostics]

    def status_counts(self) -> dict[str, int]:
        """``{'ok': …, 'degraded': …, 'failed': …, 'quarantined': …}``
        over all files."""
        counts = {status: 0 for status in
                  ("ok", "degraded", "failed", "quarantined")}
        for report in self.reports:
            counts[report.status] = counts.get(report.status, 0) + 1
        return counts

    @property
    def failed_count(self) -> int:
        return sum(1 for r in self.reports if r.status == STATUS_FAILED)

    @property
    def degraded_count(self) -> int:
        return sum(1 for r in self.reports if r.status == "degraded")

    @property
    def fully_succeeded(self) -> bool:
        """Did every file come through with no contained failure?"""
        return all(r.status == STATUS_OK for r in self.reports)

    def stage_failure_counts(self) -> dict[str, int]:
        """Diagnostic tallies per stage (for the diagnostics table)."""
        counts: dict[str, int] = {}
        for diag in self.diagnostics():
            counts[diag.stage] = counts.get(diag.stage, 0) + 1
        return counts

    # ------------------------------------------------ arbitration rollups

    def arbitrations(self) -> list[ArbitrationReport]:
        """Per-file arbitration outcomes (empty outside backend mode)."""
        return [r.arbitration for r in self.reports
                if r.arbitration is not None]

    def winners(self) -> dict[str, str | None]:
        """filename -> winning backend id (None = no valid fix)."""
        return {r.filename: r.arbitration.winner for r in self.reports
                if r.arbitration is not None}

    def backend_scoreboard(self) -> dict[str, dict[str, int]]:
        """Per-backend tallies over every arbitrated file (see
        :func:`repro.core.backends.scoreboard`)."""
        return scoreboard(self.arbitrations())

    @property
    def backends_attempted(self) -> int:
        return sum(a.attempted for a in self.arbitrations())

    @property
    def backends_rejected(self) -> int:
        return sum(a.rejected for a in self.arbitrations())

    def site_winner_totals(self) -> dict[str, int]:
        """backend id -> composite sites won, over every shipped
        site-mode composite (empty outside site mode)."""
        totals: dict[str, int] = {}
        for arb in self.arbitrations():
            if arb.winner == COMPOSITE_BACKEND:
                for backend, count in arb.site_winner_counts().items():
                    totals[backend] = totals.get(backend, 0) + count
        return totals

    @property
    def composites_shipped(self) -> int:
        """Files whose site-mode composite won the arbitration."""
        return sum(1 for a in self.arbitrations()
                   if a.winner == COMPOSITE_BACKEND)

    # ------------------------------------------------ validation rollups

    def validations(self) -> list[ValidationReport]:
        return [r.validation for r in self.reports
                if r.validation is not None]

    def validation_counts(self) -> dict[str, int]:
        """Verdict counters summed over every validated file."""
        totals: dict[str, int] = {}
        for report in self.validations():
            for verdict, n in report.counts().items():
                totals[verdict] = totals.get(verdict, 0) + n
        return totals

    @property
    def semantics_preserved(self) -> bool:
        """No validated file shows a ``semantics-changed`` divergence."""
        return all(report.ok for report in self.validations())


def _task_work_key(task: FileTask) -> str:
    """What a task's outcome depends on — *not* the filename, except
    when validating (the oracle's fuzz probes are seeded per file) or
    when fault injection is armed (faults fire per file name, so
    identical content may legitimately diverge)."""
    parts = ["task", task.text, str(task.run_slr), str(task.run_str),
             task.profile]
    if task.backends:
        # Arbitration outcomes depend on the backend chain, the
        # arbitration mode, and the contract version — and the judge
        # always runs, with per-file seeded probes, so the filename is
        # part of the work.
        parts += ["backends", ARBITRATION_VERSION, task.arbitration,
                  *task.backends, task.filename, str(task.fuzz_seed)]
    if task.validate:
        parts += [task.filename, str(task.fuzz_seed)]
    if faults.faults_enabled() and faults.affects_results():
        # Scheduler-only faults (journal/dispatch parent-kill) never
        # change report content, so they stay out of the key — the run
        # they crash must resume onto the keys it journaled.
        parts += ["faults", task.filename]
    return content_key(*parts)


def _preprocess_failure_report(filename: str, original_text: str,
                               diagnostic: FileDiagnostic,
                               wall: float) -> FileTransformReport:
    """The ``failed`` report for a file that never preprocessed: the
    original text ships verbatim (nothing was made worse)."""
    return FileTransformReport(
        filename, None, None, original_text, True, wall, None, {},
        status=STATUS_FAILED, diagnostics=[diagnostic])


def _quarantined_report(filename: str, text: str,
                        entry: dict) -> FileTransformReport:
    """The report for a known poison file: input shipped verbatim with
    status ``quarantined`` and a diagnostic naming the run that first
    condemned it — no retry/timeout budget is spent."""
    message = (f"skipped: content quarantined by run "
               f"{entry.get('run_id', '?')} after "
               f"{entry.get('attempts', 1)} attempt(s) "
               f"({entry.get('kind', '?')}: {entry.get('message', '')})")
    return FileTransformReport(
        filename, None, None, text, True, 0.0, None, {},
        status=STATUS_QUARANTINED,
        diagnostics=[FileDiagnostic(filename, "worker", KIND_QUARANTINED,
                                    message)])


_PENDING = object()     # dedup sentinel: representative still computing

#: Slot kinds for the streaming emission queue.
_SLOT_REPORT = 0        # resolved report (preprocess failure)
_SLOT_UNIQUE = 1        # representative task, waiting on the executor
_SLOT_DUP = 2           # duplicate content, waiting on its representative


@dataclass
class StreamInfo:
    """What a :class:`BatchStream` learned while it ran (final after the
    stream is exhausted)."""

    jobs: int = 1
    window: int = 0
    #: Peak count of unemitted *reports* the parent held (executor
    #: in-flight plus resolved representatives awaiting their emission
    #: turn) — the memory-bound witness.  Duplicate-file bookkeeping is
    #: a constant-size tuple per file and is not counted.
    max_buffered: int = 0
    emitted: int = 0
    deduplicated: int = 0
    preprocess_failures: int = 0
    #: Files served straight from an attached run journal (``--resume``).
    replayed: int = 0
    #: Files skipped because a previous journaled run quarantined their
    #: content (shipped verbatim, status ``quarantined``).
    quarantined: int = 0
    supervision: dict[str, int] = field(
        default_factory=_empty_supervision)
    #: Per-file parent-side preprocess wall seconds (empty when the
    #: program was already preprocessed or served from its memo).
    pp_timings: dict[str, float] = field(default_factory=dict)


class BatchStream:
    """Stream one program's transform reports in filename order.

    The lazy counterpart of :func:`apply_batch`: files are preprocessed
    in the parent *as the scheduler asks for them* (incremental
    pre-warm), content deduplication runs against a bounded LRU of
    representative reports, and completed reports are yielded to the
    caller the moment their turn in filename order comes up.  The
    parent therefore holds O(window + dedup window) state instead of
    O(batch) — at 10k files it never retains 10k reports — while
    emission order, per-report content, and fault containment match
    :func:`apply_batch` exactly.

    Iterate it once; ``info`` is complete after exhaustion.  Consumers
    that need the whole batch in memory should use :func:`apply_batch`,
    which collects this stream and adds the cache-delta statistics.
    """

    def __init__(self, program: SourceProgram, *, run_slr: bool = True,
                 run_str: bool = True, profile: str = "glib",
                 jobs: int | None = None,
                 validate: bool | None = None,
                 fuzz_seed: int | None = None,
                 backends=None,
                 arbitration: str | None = None,
                 session: AnalysisSession | None = None,
                 window: int | None = None,
                 dedup_cap: int | None = None,
                 memoize_preprocess: bool = False,
                 journal=None):
        self.program = program
        #: Optional :class:`repro.core.runlog.RunJournal`.  When set,
        #: completed files replay from the journal (``--resume``),
        #: terminal reports are journaled as they emit, and known
        #: poison content is quarantined instead of re-dispatched.
        self.journal = journal
        # Fresh circuit-breaker state per batch, installed pre-fork so
        # every worker inherits closed breakers.
        reset_breakers()
        self.session = session if session is not None else get_session()
        self.run_slr = run_slr
        self.run_str = run_str
        self.profile = profile
        self.validate = self.session.validate if validate is None \
            else validate
        self.fuzz_seed = fuzz_seed
        if backends is None:
            backends = self.session.backends \
                if self.session.backends is not None else backends_from_env()
        self.backend_ids = resolve_backends(backends) if backends else None
        if arbitration is None:
            arbitration = arbitration_from_env()
        self.arbitration = resolve_arbitration(arbitration)
        if self.arbitration == "site" and self.backend_ids is None:
            raise ValueError(
                "site arbitration requires a backends selection "
                "(--backends/REPRO_BACKENDS)")
        self.executor = make_executor(jobs)
        self.window = window if window is not None \
            else stream_window(self.executor.jobs)
        self.dedup_cap = dedup_window() if dedup_cap is None else dedup_cap
        self.memoize_preprocess = memoize_preprocess
        self.info = StreamInfo(jobs=self.executor.jobs,
                               window=self.window)
        self._reps: dict[str, object] = {}        # work key -> report
        self._pins: dict[str, int] = {}           # keys dup slots await
        self._gen = self._run()

    def __iter__(self):
        return self._gen

    def __next__(self):
        return next(self._gen)

    def _trim_reps(self) -> None:
        """Evict resolved, unpinned representatives beyond the cap
        (oldest first — plain dicts preserve insertion order)."""
        if self.dedup_cap <= 0:
            return
        while len(self._reps) > self.dedup_cap:
            for key, value in self._reps.items():
                if value is _PENDING or key in self._pins:
                    continue
                del self._reps[key]
                break
            else:
                return      # everything live; the cap yields to safety

    def _build_tasks(self, slots, unique_keys, pp_texts):
        """Generate unique tasks lazily, recording a slot per file.

        Runs in the parent, driven by the executor's dispatch window:
        each pull preprocesses (and thereby pre-warms the store for)
        exactly one more file.  Duplicate-content files pin their
        representative's entry and yield nothing.
        """
        program = self.program
        memo = program._pp_memo
        for filename in sorted(program.files):
            if program.preprocessed:
                text = program.files[filename]
            elif memo is not None:
                text = memo.files[filename]
            else:
                start = time.perf_counter()
                try:
                    faults.check("preprocess", filename)
                    text = self.session.preprocess(
                        program.files[filename], filename,
                        program.headers, program.predefined).text
                except Exception as exc:
                    wall = time.perf_counter() - start
                    self.info.pp_timings[filename] = wall
                    self.info.preprocess_failures += 1
                    failure = _preprocess_failure_report(
                        filename, program.files[filename],
                        diagnostic_from_exception(
                            "preprocess", filename, exc),
                        wall)
                    if self.journal is not None:
                        self.journal.record_result(
                            filename,
                            content_key("pp-fail",
                                        program.files[filename]),
                            failure)
                    slots.append((filename, _SLOT_REPORT, failure))
                    continue
                self.info.pp_timings[filename] = \
                    time.perf_counter() - start
                if pp_texts is not None:
                    pp_texts[filename] = text
            task = FileTask(filename, text, self.run_slr, self.run_str,
                            self.profile, self.validate, self.fuzz_seed,
                            self.backend_ids, self.arbitration)
            key = _task_work_key(task)
            if self.journal is not None:
                # Resume: a journaled completion whose work key still
                # matches (content, settings, tool all unchanged)
                # replays without dispatching; a key miss falls through
                # and recomputes.
                replayed = self.journal.replay(filename, key)
                if replayed is not None:
                    self.info.replayed += 1
                    slots.append((filename, _SLOT_REPORT, replayed))
                    continue
                from .runlog import quarantine_lookup
                entry = quarantine_lookup(text)
                if entry is not None:
                    self.info.quarantined += 1
                    report = _quarantined_report(filename, text, entry)
                    self.journal.record_quarantined(filename, key, entry)
                    self.journal.write_audit(report)
                    slots.append((filename, _SLOT_REPORT, report))
                    continue
            if key in self._reps:
                self.info.deduplicated += 1
                self._pins[key] = self._pins.get(key, 0) + 1
                slots.append((filename, _SLOT_DUP, key))
                continue
            self._reps[key] = _PENDING
            # The pin keeps a resolved-but-not-yet-emitted
            # representative safe from _trim_reps until its slot (and
            # every duplicate's) has been served.
            self._pins[key] = self._pins.get(key, 0) + 1
            self._trim_reps()
            unique_keys.append(key)
            slots.append((filename, _SLOT_UNIQUE, key))
            if self.journal is not None:
                self.journal.record_dispatched(filename, key)
            yield task

    def _journal_emission(self, filename: str, key: str,
                          report: FileTransformReport) -> None:
        """Journal one computed report as it emits — result pointer
        published first, then the WAL event — and quarantine content
        that burned the whole retry budget on a worker-stage death or
        timeout (the poison-file signature: the *machinery* around the
        file kept dying, so no per-stage guard could contain it)."""
        self.journal.record_result(filename, key, report)
        if report.status != STATUS_FAILED:
            return
        from .runlog import quarantine_record
        for diag in report.diagnostics:
            if diag.stage == "worker" \
                    and diag.kind in (KIND_TIMEOUT, KIND_WORKER_DIED):
                quarantine_record(report.final_text, filename, diag,
                                  self.journal.run_id)
                return

    def _run(self):
        from collections import deque
        slots: deque = deque()
        unique_keys: deque = deque()
        pp_texts: dict[str, str] | None = \
            {} if self.memoize_preprocess else None
        # A single-file program gains nothing from forking (the
        # historical executor fallback for trivial batches); the
        # requested job count still lands in ``info.jobs``.
        runner = SerialExecutor() if self.program.file_count <= 1 \
            and self.executor.jobs > 1 else self.executor
        results = runner.imap(
            self._build_tasks(slots, unique_keys, pp_texts),
            window=self.window)
        exhausted = False
        resolved_unemitted = 0
        while True:
            buffered = len(unique_keys) + resolved_unemitted
            if buffered > self.info.max_buffered:
                self.info.max_buffered = buffered
            while slots:
                filename, kind, value = slots[0]
                if kind == _SLOT_REPORT:
                    slots.popleft()
                    self.info.emitted += 1
                    yield value
                    continue
                report = self._reps.get(value)
                if report is _PENDING:
                    break           # head still computing: pull results
                slots.popleft()
                self._pins[value] -= 1
                if not self._pins[value]:
                    del self._pins[value]
                if kind == _SLOT_UNIQUE:
                    resolved_unemitted -= 1
                elif report.filename != filename:
                    report = dataclasses.replace(
                        report, filename=filename)
                if self.journal is not None:
                    self._journal_emission(filename, value, report)
                self.info.emitted += 1
                yield report
            if exhausted and not slots:
                break
            try:
                _index, report = next(results)
            except StopIteration:
                exhausted = True
                continue
            key = unique_keys.popleft()
            resolved_unemitted += 1
            if key in self._reps:
                self._reps[key] = report
            self._trim_reps()
        self.info.supervision = dict(runner.supervision)
        if self.journal is not None:
            self.journal.close()
        program = self.program
        if pp_texts is not None and not program.preprocessed \
                and program._pp_memo is None \
                and not self.info.preprocess_failures \
                and len(pp_texts) == program.file_count:
            program._pp_memo = SourceProgram(
                program.name, dict(pp_texts), {}, {}, program.main_file,
                preprocessed=True)


def stream_batch(program: SourceProgram, **kwargs) -> BatchStream:
    """Streaming batch entry point: yields
    :class:`FileTransformReport` objects in filename order while the
    pool is still working on later files.  Accepts the same keyword
    arguments as :func:`apply_batch` plus ``window`` (dispatch-ahead
    bound, default ``REPRO_STREAM_WINDOW``) and ``dedup_cap``
    (representative-retention bound, default ``REPRO_DEDUP_WINDOW``)."""
    return BatchStream(program, **kwargs)


def apply_batch(program: SourceProgram, *, run_slr: bool = True,
                run_str: bool = True, profile: str = "glib",
                jobs: int | None = None,
                validate: bool | None = None,
                fuzz_seed: int | None = None,
                backends=None,
                arbitration: str | None = None,
                session: AnalysisSession | None = None,
                journal=None) -> BatchResult:
    """Preprocess and transform every file of ``program``.

    Files are processed in filename order by the executor selected via
    ``jobs`` (1 = serial, N > 1 = fork pool, default from ``REPRO_JOBS``),
    so serial and parallel runs produce byte-identical reports.

    Preprocessing runs in the parent — pre-warming the shared caches
    (and the persistent store) before any worker forks — and tasks with
    identical work keys are deduplicated, so no two workers ever
    transform the same content: the representative's report is cloned
    under each duplicate's filename.

    ``validate=True`` runs the differential oracle on every transformed
    file (``None`` defers to ``session.validate``); verdicts land on
    each report's ``validation`` and roll up via
    :meth:`BatchResult.validation_counts`.

    ``backends`` switches the per-file work from the legacy SLR→STR
    chain to oracle-arbitrated best-fix selection over the named fix
    backends (a comma-separated string, an iterable of ids, or
    ``"all"``).  ``None`` falls back to ``session.backends``, then the
    ``REPRO_BACKENDS`` environment knob, then legacy mode.  Under
    arbitration the oracle always judges every candidate (``validate``
    only controls whether the verdict table is *rendered*), the winner's
    validation lands on each report, and per-backend tallies roll up via
    :meth:`BatchResult.backend_scoreboard`.

    ``arbitration`` picks whole-file (``"file"``, the default) or
    per-site (``"site"``) winner selection; ``None`` defers to the
    ``REPRO_ARBITRATION`` environment knob.  Site mode requires a
    backend selection — it arbitrates between backends per call site.

    Fault isolation: a file whose preprocessing fails becomes a
    ``failed`` report (original text shipped verbatim, one
    ``preprocess`` diagnostic) while its siblings continue through the
    pipeline; downstream per-stage failures are contained inside
    :func:`transform_file` the same way.
    """
    before = snapshot_stats()
    start = time.perf_counter()
    # Unbounded window and dedup retention: apply_batch holds every
    # report anyway, so capping dispatch-ahead would only risk idling
    # workers behind a slow emission head; streaming consumers that
    # want the bounds use stream_batch directly.
    stream = BatchStream(program, run_slr=run_slr, run_str=run_str,
                         profile=profile, jobs=jobs, validate=validate,
                         fuzz_seed=fuzz_seed, backends=backends,
                         arbitration=arbitration, session=session,
                         window=max(1, program.file_count),
                         dedup_cap=0, memoize_preprocess=True,
                         journal=journal)
    reports = list(stream)
    wall = time.perf_counter() - start
    after = snapshot_stats()

    def delta(name: str) -> CacheStats:
        return after[name].delta(before[name]) if name in before \
            else CacheStats(name)

    pp_timings = stream.info.pp_timings
    stage_times = {}
    for report in reports:
        times = dict(report.stage_times)
        if report.filename in pp_timings:
            times["preprocess"] = times.get("preprocess", 0.0) \
                + pp_timings[report.filename]
        stage_times[report.filename] = times
    result = BatchResult(program, reports, None)
    stats = BatchStats(
        jobs=stream.info.jobs, wall_time=wall,
        file_walls={r.filename: r.wall_time for r in reports},
        parse=delta("parse"), preprocess=delta("preprocess"),
        slr=delta("slr"), str_=delta("str"), validate=delta("validate"),
        backend=delta("backend"),
        stage_times=stage_times,
        deduplicated=stream.info.deduplicated,
        supervision=stream.info.supervision,
        backends_attempted=result.backends_attempted,
        backends_rejected=result.backends_rejected,
        replayed=stream.info.replayed,
        quarantined=stream.info.quarantined)
    result.stats = stats
    return result
