"""Batch application of the transformations to whole programs.

The paper evaluates SLR/STR by applying them *on all possible targets* in
benchmark and open-source programs (§IV).  This module provides the
program model (a named set of C source files plus headers) and a
pluggable batch driver: files are preprocessed and parsed through the
shared :class:`~repro.core.session.AnalysisSession` (content-keyed, so
no stage re-parses text another stage already processed), transformed by
SLR and/or STR, verified to still parse (the paper's "no compilation
errors" check), and aggregated with per-file wall time and cache-hit
counters.

Execution is pluggable: :class:`SerialExecutor` runs in-process;
:class:`ProcessPoolExecutor` fans files out over a ``multiprocessing``
fork pool (``jobs=N`` / ``REPRO_JOBS``).  Both produce byte-identical
results — tasks are ordered by filename and the pool preserves input
order — so a parallel run differs from a serial one only in wall clock.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

from ..cfront.cache import CacheStats, ContentCache, content_key, \
    snapshot_stats
from ..cfront.source import count_source_lines
from . import profile
from .session import AnalysisSession, get_session
from .slr import SafeLibraryReplacement
from .strtransform import SafeTypeReplacement
from .transform import TransformResult
from .validate import ValidationReport, default_inputs, validate_pair


def default_jobs() -> int:
    """Worker count when the caller does not pass one (``REPRO_JOBS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


@dataclass
class SourceProgram:
    """A C program: source files, private headers, predefined macros."""

    name: str
    files: dict[str, str]                       # .c file name -> text
    headers: dict[str, str] = field(default_factory=dict)
    predefined: dict[str, str] = field(default_factory=dict)
    main_file: str | None = None
    preprocessed: bool = False                  # files already preprocessed
    _pp_memo: "SourceProgram | None" = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def file_count(self) -> int:
        return len(self.files)

    def kloc(self) -> float:
        """Source KLOC over the .c files (blank lines excluded)."""
        return sum(count_source_lines(text)
                   for text in self.files.values()) / 1000.0

    def preprocess(self, session: AnalysisSession | None = None,
                   *, timings: dict[str, float] | None = None
                   ) -> "SourceProgram":
        """Preprocess every file; returns a new, preprocessed program.

        Memoized on the instance (Tables III–VI all query it, some more
        than once) and served from the session's content-keyed cache, so
        identical file text is only ever preprocessed once per process.
        ``timings`` (when given) receives per-file wall seconds for the
        stage profiler.
        """
        if self.preprocessed:
            return self
        if self._pp_memo is not None:
            return self._pp_memo
        session = session if session is not None else get_session()
        out = {}
        for filename, text in self.files.items():
            start = time.perf_counter()
            out[filename] = session.preprocess(text, filename,
                                               self.headers,
                                               self.predefined).text
            if timings is not None:
                timings[filename] = time.perf_counter() - start
        self._pp_memo = SourceProgram(self.name, out, {}, {},
                                      self.main_file, preprocessed=True)
        return self._pp_memo

    def pp_kloc(self) -> float:
        """Preprocessed KLOC (the paper's 'PP KLOC' column)."""
        return self.preprocess().kloc()


@dataclass(frozen=True)
class FileTask:
    """One file's transformation work order (picklable for the pool)."""

    filename: str
    text: str                                   # preprocessed text
    run_slr: bool = True
    run_str: bool = True
    profile: str = "glib"
    validate: bool = False                      # run the diff oracle
    fuzz_seed: int | None = None                # None = env/default seed


@dataclass
class FileTransformReport:
    filename: str
    slr: TransformResult | None
    str_: TransformResult | None
    final_text: str
    parses: bool
    wall_time: float = 0.0                      # seconds, in the worker
    validation: "ValidationReport | None" = None
    stage_times: dict[str, float] = field(default_factory=dict)


#: Whole-stage transform results, persisted across runs: an SLR/STR pass
#: is a pure function of (input text, profile, tool version), so a warm
#: process skips parsing *and* transforming texts any run has seen.
_SLR_CACHE = ContentCache("slr", family="slr")
_STR_CACHE = ContentCache("str", family="str")


def cached_slr(text: str, filename: str, profile_name: str = "glib",
               session: AnalysisSession | None = None) -> TransformResult:
    """Run (or replay) SLR over ``text``; results must be treated as
    immutable — the same object serves every caller."""
    key = content_key("slr", profile_name, text)
    return _SLR_CACHE.get_or_build(
        key, lambda: SafeLibraryReplacement(
            text, filename, profile=profile_name, session=session).run())


def cached_str(text: str, filename: str,
               session: AnalysisSession | None = None) -> TransformResult:
    """Run (or replay) STR over ``text``."""
    key = content_key("str", text)
    return _STR_CACHE.get_or_build(
        key, lambda: SafeTypeReplacement(
            text, filename, session=session).run())


def transform_file(task: FileTask,
                   session: AnalysisSession | None = None
                   ) -> FileTransformReport:
    """Run the SLR→STR chain over one preprocessed file.

    When SLR queues no edits, STR's parse of the "new" text is a cache
    hit on SLR's input unit — the chain only rebuilds what changed.
    With ``task.validate`` set, the differential oracle then executes
    the original vs. transformed text on the standard probe set; the
    probe inputs depend only on filename and seed, so verdicts are
    byte-identical at any worker count.  Per-stage wall times land on
    the report's ``stage_times`` (exclusive, so they sum to the file's
    wall time).
    """
    session = session if session is not None else get_session()
    start = time.perf_counter()
    with profile.collect(task.filename) as stage_times:
        text = task.text
        slr_result: TransformResult | None = None
        str_result: TransformResult | None = None
        if task.run_slr:
            with profile.stage("slr"):
                slr_result = cached_slr(text, task.filename,
                                        task.profile, session)
            text = slr_result.new_text
        if task.run_str:
            with profile.stage("str"):
                str_result = cached_str(text, task.filename, session)
            text = str_result.new_text
        with profile.stage("verify"):
            parses = session.check_parses(text, task.filename)
        validation: ValidationReport | None = None
        if task.validate and parses:
            validation = validate_pair(
                task.text, text, filename=task.filename,
                inputs=default_inputs(task.filename, seed=task.fuzz_seed))
    return FileTransformReport(task.filename, slr_result, str_result,
                               text, parses,
                               time.perf_counter() - start, validation,
                               dict(stage_times))


# ------------------------------------------------------------- executors

class SerialExecutor:
    """Run every task in the calling process, in task order."""

    jobs = 1

    def map(self, tasks: list[FileTask]) -> list[FileTransformReport]:
        return [transform_file(task) for task in tasks]


class ProcessPoolExecutor:
    """Fan tasks out over a ``multiprocessing`` fork pool.

    Workers are forked, so they inherit the parent's warmed default
    session (copy-on-write) — a pre-warmed cache benefits every worker.
    Result order matches task order, making parallel output
    byte-identical to serial.  Falls back to serial execution where the
    fork start method is unavailable.
    """

    def __init__(self, jobs: int):
        self.jobs = max(1, jobs)

    def map(self, tasks: list[FileTask]) -> list[FileTransformReport]:
        if self.jobs == 1 or len(tasks) <= 1:
            return SerialExecutor().map(tasks)
        import multiprocessing as mp
        try:
            ctx = mp.get_context("fork")
        except ValueError:
            return SerialExecutor().map(tasks)
        with ctx.Pool(min(self.jobs, len(tasks))) as pool:
            return pool.map(transform_file, tasks)


def make_executor(jobs: int | None = None):
    jobs = default_jobs() if jobs is None else jobs
    return SerialExecutor() if jobs <= 1 else ProcessPoolExecutor(jobs)


# ------------------------------------------------------------- aggregation

@dataclass
class BatchStats:
    """Where the batch spent its time and how the caches fared.

    Cache counters are deltas over the run as seen by *this* process;
    a fork pool's in-worker hits show up in per-file wall times instead
    (worker caches are not merged back).  ``stage_times`` holds each
    file's per-stage breakdown (shipped back from workers, so it is
    complete at any worker count); ``stage_totals`` sums them.
    ``deduplicated`` counts tasks served by another task's result
    because their content was identical.
    """

    jobs: int
    wall_time: float
    file_walls: dict[str, float] = field(default_factory=dict)
    parse: CacheStats = field(default_factory=CacheStats)
    preprocess: CacheStats = field(default_factory=CacheStats)
    slr: CacheStats = field(default_factory=CacheStats)
    str_: CacheStats = field(default_factory=CacheStats)
    validate: CacheStats = field(default_factory=CacheStats)
    stage_times: dict[str, dict[str, float]] = field(default_factory=dict)
    deduplicated: int = 0

    @property
    def stage_totals(self) -> dict[str, float]:
        return profile.merge_totals(self.stage_times)

    def as_dict(self) -> dict:
        return {"jobs": self.jobs,
                "wall_time_s": round(self.wall_time, 4),
                "file_walls_s": {name: round(wall, 4)
                                 for name, wall
                                 in sorted(self.file_walls.items())},
                "parse_cache": self.parse.as_dict(),
                "preprocess_cache": self.preprocess.as_dict(),
                "slr_cache": self.slr.as_dict(),
                "str_cache": self.str_.as_dict(),
                "validate_cache": self.validate.as_dict(),
                "stage_totals_s": {name: round(seconds, 4)
                                   for name, seconds
                                   in sorted(self.stage_totals.items())},
                "deduplicated": self.deduplicated}


@dataclass
class BatchResult:
    """Aggregated outcome of batch-transforming one program."""

    program: SourceProgram
    reports: list[FileTransformReport]
    stats: BatchStats | None = None

    @property
    def transformed_program(self) -> SourceProgram:
        return SourceProgram(
            self.program.name + "+fixed",
            {r.filename: r.final_text for r in self.reports},
            {}, {}, self.program.main_file, preprocessed=True)

    def _results(self, which: str) -> list[TransformResult]:
        out = []
        for report in self.reports:
            result = report.slr if which == "SLR" else report.str_
            if result is not None:
                out.append(result)
        return out

    def candidates(self, which: str) -> int:
        return sum(r.candidates for r in self._results(which))

    def transformed(self, which: str) -> int:
        return sum(r.transformed_count for r in self._results(which))

    def percent(self, which: str) -> float:
        total = self.candidates(which)
        if total == 0:
            return 0.0
        return 100.0 * self.transformed(which) / total

    def failures_by_reason(self, which: str) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self._results(which):
            for reason, n in result.failures_by_reason().items():
                counts[reason] = counts.get(reason, 0) + n
        return counts

    def by_target(self, which: str) -> dict[str, tuple[int, int]]:
        stats: dict[str, tuple[int, int]] = {}
        for result in self._results(which):
            for target, (done, total) in result.by_target().items():
                prev_done, prev_total = stats.get(target, (0, 0))
                stats[target] = (prev_done + done, prev_total + total)
        return stats

    @property
    def all_parse(self) -> bool:
        return all(r.parses for r in self.reports)

    # ------------------------------------------------ validation rollups

    def validations(self) -> list[ValidationReport]:
        return [r.validation for r in self.reports
                if r.validation is not None]

    def validation_counts(self) -> dict[str, int]:
        """Verdict counters summed over every validated file."""
        totals: dict[str, int] = {}
        for report in self.validations():
            for verdict, n in report.counts().items():
                totals[verdict] = totals.get(verdict, 0) + n
        return totals

    @property
    def semantics_preserved(self) -> bool:
        """No validated file shows a ``semantics-changed`` divergence."""
        return all(report.ok for report in self.validations())


def _task_work_key(task: FileTask) -> str:
    """What a task's outcome depends on — *not* the filename, except
    when validating (the oracle's fuzz probes are seeded per file)."""
    parts = ["task", task.text, str(task.run_slr), str(task.run_str),
             task.profile]
    if task.validate:
        parts += [task.filename, str(task.fuzz_seed)]
    return content_key(*parts)


def apply_batch(program: SourceProgram, *, run_slr: bool = True,
                run_str: bool = True, profile: str = "glib",
                jobs: int | None = None,
                validate: bool | None = None,
                fuzz_seed: int | None = None,
                session: AnalysisSession | None = None) -> BatchResult:
    """Preprocess and transform every file of ``program``.

    Files are processed in filename order by the executor selected via
    ``jobs`` (1 = serial, N > 1 = fork pool, default from ``REPRO_JOBS``),
    so serial and parallel runs produce byte-identical reports.

    Preprocessing runs in the parent — pre-warming the shared caches
    (and the persistent store) before any worker forks — and tasks with
    identical work keys are deduplicated, so no two workers ever
    transform the same content: the representative's report is cloned
    under each duplicate's filename.

    ``validate=True`` runs the differential oracle on every transformed
    file (``None`` defers to ``session.validate``); verdicts land on
    each report's ``validation`` and roll up via
    :meth:`BatchResult.validation_counts`.
    """
    session = session if session is not None else get_session()
    if validate is None:
        validate = session.validate
    before = snapshot_stats()
    start = time.perf_counter()
    pp_timings: dict[str, float] = {}
    preprocessed = program.preprocess(session, timings=pp_timings)
    tasks = [FileTask(filename, preprocessed.files[filename],
                      run_slr, run_str, profile, validate, fuzz_seed)
             for filename in sorted(preprocessed.files)]
    unique: dict[str, FileTask] = {}
    key_of: dict[str, str] = {}
    for task in tasks:
        key = _task_work_key(task)
        key_of[task.filename] = key
        unique.setdefault(key, task)
    executor = make_executor(jobs)
    unique_reports = dict(zip(unique,
                              executor.map(list(unique.values()))))
    reports = []
    for task in tasks:
        report = unique_reports[key_of[task.filename]]
        if report.filename != task.filename:
            report = dataclasses.replace(report, filename=task.filename)
        reports.append(report)
    wall = time.perf_counter() - start
    after = snapshot_stats()

    def delta(name: str) -> CacheStats:
        return after[name].delta(before[name]) if name in before \
            else CacheStats(name)

    stage_times = {}
    for report in reports:
        times = dict(report.stage_times)
        if report.filename in pp_timings:
            times["preprocess"] = times.get("preprocess", 0.0) \
                + pp_timings[report.filename]
        stage_times[report.filename] = times
    stats = BatchStats(
        jobs=executor.jobs, wall_time=wall,
        file_walls={r.filename: r.wall_time for r in reports},
        parse=delta("parse"), preprocess=delta("preprocess"),
        slr=delta("slr"), str_=delta("str"), validate=delta("validate"),
        stage_times=stage_times,
        deduplicated=len(tasks) - len(unique))
    return BatchResult(program, reports, stats)
