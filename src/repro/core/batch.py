"""Batch application of the transformations to whole programs.

The paper evaluates SLR/STR by applying them *on all possible targets* in
benchmark and open-source programs (§IV).  This module provides the program
model (a named set of C source files plus headers) and the driver that
preprocesses every file, runs SLR and/or STR over each, verifies the output
still parses (the paper's "no compilation errors" check), and aggregates
per-site outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfront.parser import parse_translation_unit
from ..cfront.preprocessor import Preprocessor
from ..cfront.source import count_source_lines
from .slr import SafeLibraryReplacement
from .strtransform import SafeTypeReplacement
from .transform import TransformResult


@dataclass
class SourceProgram:
    """A C program: source files, private headers, predefined macros."""

    name: str
    files: dict[str, str]                       # .c file name -> text
    headers: dict[str, str] = field(default_factory=dict)
    predefined: dict[str, str] = field(default_factory=dict)
    main_file: str | None = None
    preprocessed: bool = False                  # files already preprocessed

    @property
    def file_count(self) -> int:
        return len(self.files)

    def kloc(self) -> float:
        """Source KLOC over the .c files (blank lines excluded)."""
        return sum(count_source_lines(text)
                   for text in self.files.values()) / 1000.0

    def preprocess(self) -> "SourceProgram":
        """Preprocess every file; returns a new, preprocessed program."""
        if self.preprocessed:
            return self
        out: dict[str, str] = {}
        for filename, text in self.files.items():
            pp = Preprocessor(self.headers, self.predefined)
            out[filename] = pp.preprocess(text, filename).text
        return SourceProgram(self.name, out, {}, {}, self.main_file,
                             preprocessed=True)

    def pp_kloc(self) -> float:
        """Preprocessed KLOC (the paper's 'PP KLOC' column)."""
        return self.preprocess().kloc()


@dataclass
class FileTransformReport:
    filename: str
    slr: TransformResult | None
    str_: TransformResult | None
    final_text: str
    parses: bool


@dataclass
class BatchResult:
    """Aggregated outcome of batch-transforming one program."""

    program: SourceProgram
    reports: list[FileTransformReport]

    @property
    def transformed_program(self) -> SourceProgram:
        return SourceProgram(
            self.program.name + "+fixed",
            {r.filename: r.final_text for r in self.reports},
            {}, {}, self.program.main_file, preprocessed=True)

    def _results(self, which: str) -> list[TransformResult]:
        out = []
        for report in self.reports:
            result = report.slr if which == "SLR" else report.str_
            if result is not None:
                out.append(result)
        return out

    def candidates(self, which: str) -> int:
        return sum(r.candidates for r in self._results(which))

    def transformed(self, which: str) -> int:
        return sum(r.transformed_count for r in self._results(which))

    def percent(self, which: str) -> float:
        total = self.candidates(which)
        if total == 0:
            return 0.0
        return 100.0 * self.transformed(which) / total

    def failures_by_reason(self, which: str) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self._results(which):
            for reason, n in result.failures_by_reason().items():
                counts[reason] = counts.get(reason, 0) + n
        return counts

    def by_target(self, which: str) -> dict[str, tuple[int, int]]:
        stats: dict[str, tuple[int, int]] = {}
        for result in self._results(which):
            for target, (done, total) in result.by_target().items():
                prev_done, prev_total = stats.get(target, (0, 0))
                stats[target] = (prev_done + done, prev_total + total)
        return stats

    @property
    def all_parse(self) -> bool:
        return all(r.parses for r in self.reports)


def apply_batch(program: SourceProgram, *, run_slr: bool = True,
                run_str: bool = True) -> BatchResult:
    """Preprocess and transform every file of ``program``."""
    preprocessed = program.preprocess()
    reports: list[FileTransformReport] = []
    for filename, text in preprocessed.files.items():
        slr_result: TransformResult | None = None
        str_result: TransformResult | None = None
        current = text
        if run_slr:
            slr_result = SafeLibraryReplacement(current, filename).run()
            current = slr_result.new_text
        if run_str:
            str_result = SafeTypeReplacement(current, filename).run()
            current = str_result.new_text
        parses = True
        try:
            parse_translation_unit(current, filename)
        except Exception:
            parses = False
        reports.append(FileTransformReport(filename, slr_result, str_result,
                                           current, parses))
    return BatchResult(program, reports)
