"""Batch application of the transformations to whole programs.

The paper evaluates SLR/STR by applying them *on all possible targets* in
benchmark and open-source programs (§IV).  This module provides the
program model (a named set of C source files plus headers) and a
pluggable batch driver: files are preprocessed and parsed through the
shared :class:`~repro.core.session.AnalysisSession` (content-keyed, so
no stage re-parses text another stage already processed), transformed by
SLR and/or STR, verified to still parse (the paper's "no compilation
errors" check), and aggregated with per-file wall time and cache-hit
counters.

Execution is pluggable: :class:`SerialExecutor` runs in-process;
:class:`ProcessPoolExecutor` fans files out over a ``multiprocessing``
fork pool (``jobs=N`` / ``REPRO_JOBS``).  Both produce byte-identical
results — tasks are ordered by filename and the pool preserves input
order — so a parallel run differs from a serial one only in wall clock.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..cfront.cache import CacheStats, snapshot_stats
from ..cfront.source import count_source_lines
from .session import AnalysisSession, get_session
from .slr import SafeLibraryReplacement
from .strtransform import SafeTypeReplacement
from .transform import TransformResult
from .validate import ValidationReport, default_inputs, validate_pair


def default_jobs() -> int:
    """Worker count when the caller does not pass one (``REPRO_JOBS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


@dataclass
class SourceProgram:
    """A C program: source files, private headers, predefined macros."""

    name: str
    files: dict[str, str]                       # .c file name -> text
    headers: dict[str, str] = field(default_factory=dict)
    predefined: dict[str, str] = field(default_factory=dict)
    main_file: str | None = None
    preprocessed: bool = False                  # files already preprocessed
    _pp_memo: "SourceProgram | None" = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def file_count(self) -> int:
        return len(self.files)

    def kloc(self) -> float:
        """Source KLOC over the .c files (blank lines excluded)."""
        return sum(count_source_lines(text)
                   for text in self.files.values()) / 1000.0

    def preprocess(self, session: AnalysisSession | None = None
                   ) -> "SourceProgram":
        """Preprocess every file; returns a new, preprocessed program.

        Memoized on the instance (Tables III–VI all query it, some more
        than once) and served from the session's content-keyed cache, so
        identical file text is only ever preprocessed once per process.
        """
        if self.preprocessed:
            return self
        if self._pp_memo is not None:
            return self._pp_memo
        session = session if session is not None else get_session()
        out = {
            filename: session.preprocess(text, filename, self.headers,
                                         self.predefined).text
            for filename, text in self.files.items()
        }
        self._pp_memo = SourceProgram(self.name, out, {}, {},
                                      self.main_file, preprocessed=True)
        return self._pp_memo

    def pp_kloc(self) -> float:
        """Preprocessed KLOC (the paper's 'PP KLOC' column)."""
        return self.preprocess().kloc()


@dataclass(frozen=True)
class FileTask:
    """One file's transformation work order (picklable for the pool)."""

    filename: str
    text: str                                   # preprocessed text
    run_slr: bool = True
    run_str: bool = True
    profile: str = "glib"
    validate: bool = False                      # run the diff oracle
    fuzz_seed: int | None = None                # None = env/default seed


@dataclass
class FileTransformReport:
    filename: str
    slr: TransformResult | None
    str_: TransformResult | None
    final_text: str
    parses: bool
    wall_time: float = 0.0                      # seconds, in the worker
    validation: "ValidationReport | None" = None


def transform_file(task: FileTask,
                   session: AnalysisSession | None = None
                   ) -> FileTransformReport:
    """Run the SLR→STR chain over one preprocessed file.

    When SLR queues no edits, STR's parse of the "new" text is a cache
    hit on SLR's input unit — the chain only rebuilds what changed.
    With ``task.validate`` set, the differential oracle then executes
    the original vs. transformed text on the standard probe set; the
    probe inputs depend only on filename and seed, so verdicts are
    byte-identical at any worker count.
    """
    session = session if session is not None else get_session()
    start = time.perf_counter()
    text = task.text
    slr_result: TransformResult | None = None
    str_result: TransformResult | None = None
    if task.run_slr:
        slr_result = SafeLibraryReplacement(
            text, task.filename, profile=task.profile,
            session=session).run()
        text = slr_result.new_text
    if task.run_str:
        str_result = SafeTypeReplacement(
            text, task.filename, session=session).run()
        text = str_result.new_text
    parses = session.check_parses(text, task.filename)
    validation: ValidationReport | None = None
    if task.validate and parses:
        validation = validate_pair(
            task.text, text, filename=task.filename,
            inputs=default_inputs(task.filename, seed=task.fuzz_seed))
    return FileTransformReport(task.filename, slr_result, str_result,
                               text, parses,
                               time.perf_counter() - start, validation)


# ------------------------------------------------------------- executors

class SerialExecutor:
    """Run every task in the calling process, in task order."""

    jobs = 1

    def map(self, tasks: list[FileTask]) -> list[FileTransformReport]:
        return [transform_file(task) for task in tasks]


class ProcessPoolExecutor:
    """Fan tasks out over a ``multiprocessing`` fork pool.

    Workers are forked, so they inherit the parent's warmed default
    session (copy-on-write) — a pre-warmed cache benefits every worker.
    Result order matches task order, making parallel output
    byte-identical to serial.  Falls back to serial execution where the
    fork start method is unavailable.
    """

    def __init__(self, jobs: int):
        self.jobs = max(1, jobs)

    def map(self, tasks: list[FileTask]) -> list[FileTransformReport]:
        if self.jobs == 1 or len(tasks) <= 1:
            return SerialExecutor().map(tasks)
        import multiprocessing as mp
        try:
            ctx = mp.get_context("fork")
        except ValueError:
            return SerialExecutor().map(tasks)
        with ctx.Pool(min(self.jobs, len(tasks))) as pool:
            return pool.map(transform_file, tasks)


def make_executor(jobs: int | None = None):
    jobs = default_jobs() if jobs is None else jobs
    return SerialExecutor() if jobs <= 1 else ProcessPoolExecutor(jobs)


# ------------------------------------------------------------- aggregation

@dataclass
class BatchStats:
    """Where the batch spent its time and how the caches fared.

    Cache counters are deltas over the run as seen by *this* process;
    a fork pool's in-worker hits show up in per-file wall times instead
    (worker caches are not merged back).
    """

    jobs: int
    wall_time: float
    file_walls: dict[str, float] = field(default_factory=dict)
    parse: CacheStats = field(default_factory=CacheStats)
    preprocess: CacheStats = field(default_factory=CacheStats)

    def as_dict(self) -> dict:
        return {"jobs": self.jobs,
                "wall_time_s": round(self.wall_time, 6),
                "file_walls_s": {name: round(wall, 6)
                                 for name, wall in self.file_walls.items()},
                "parse_cache": self.parse.as_dict(),
                "preprocess_cache": self.preprocess.as_dict()}


@dataclass
class BatchResult:
    """Aggregated outcome of batch-transforming one program."""

    program: SourceProgram
    reports: list[FileTransformReport]
    stats: BatchStats | None = None

    @property
    def transformed_program(self) -> SourceProgram:
        return SourceProgram(
            self.program.name + "+fixed",
            {r.filename: r.final_text for r in self.reports},
            {}, {}, self.program.main_file, preprocessed=True)

    def _results(self, which: str) -> list[TransformResult]:
        out = []
        for report in self.reports:
            result = report.slr if which == "SLR" else report.str_
            if result is not None:
                out.append(result)
        return out

    def candidates(self, which: str) -> int:
        return sum(r.candidates for r in self._results(which))

    def transformed(self, which: str) -> int:
        return sum(r.transformed_count for r in self._results(which))

    def percent(self, which: str) -> float:
        total = self.candidates(which)
        if total == 0:
            return 0.0
        return 100.0 * self.transformed(which) / total

    def failures_by_reason(self, which: str) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self._results(which):
            for reason, n in result.failures_by_reason().items():
                counts[reason] = counts.get(reason, 0) + n
        return counts

    def by_target(self, which: str) -> dict[str, tuple[int, int]]:
        stats: dict[str, tuple[int, int]] = {}
        for result in self._results(which):
            for target, (done, total) in result.by_target().items():
                prev_done, prev_total = stats.get(target, (0, 0))
                stats[target] = (prev_done + done, prev_total + total)
        return stats

    @property
    def all_parse(self) -> bool:
        return all(r.parses for r in self.reports)

    # ------------------------------------------------ validation rollups

    def validations(self) -> list[ValidationReport]:
        return [r.validation for r in self.reports
                if r.validation is not None]

    def validation_counts(self) -> dict[str, int]:
        """Verdict counters summed over every validated file."""
        totals: dict[str, int] = {}
        for report in self.validations():
            for verdict, n in report.counts().items():
                totals[verdict] = totals.get(verdict, 0) + n
        return totals

    @property
    def semantics_preserved(self) -> bool:
        """No validated file shows a ``semantics-changed`` divergence."""
        return all(report.ok for report in self.validations())


def apply_batch(program: SourceProgram, *, run_slr: bool = True,
                run_str: bool = True, profile: str = "glib",
                jobs: int | None = None,
                validate: bool | None = None,
                fuzz_seed: int | None = None,
                session: AnalysisSession | None = None) -> BatchResult:
    """Preprocess and transform every file of ``program``.

    Files are processed in filename order by the executor selected via
    ``jobs`` (1 = serial, N > 1 = fork pool, default from ``REPRO_JOBS``),
    so serial and parallel runs produce byte-identical reports.

    ``validate=True`` runs the differential oracle on every transformed
    file (``None`` defers to ``session.validate``); verdicts land on
    each report's ``validation`` and roll up via
    :meth:`BatchResult.validation_counts`.
    """
    session = session if session is not None else get_session()
    if validate is None:
        validate = session.validate
    before = snapshot_stats()
    start = time.perf_counter()
    preprocessed = program.preprocess(session)
    tasks = [FileTask(filename, preprocessed.files[filename],
                      run_slr, run_str, profile, validate, fuzz_seed)
             for filename in sorted(preprocessed.files)]
    executor = make_executor(jobs)
    reports = executor.map(tasks)
    wall = time.perf_counter() - start
    after = snapshot_stats()
    stats = BatchStats(
        jobs=executor.jobs, wall_time=wall,
        file_walls={r.filename: r.wall_time for r in reports},
        parse=after["parse"].delta(before["parse"])
        if "parse" in before else CacheStats("parse"),
        preprocess=after["preprocess"].delta(before["preprocess"])
        if "preprocess" in before else CacheStats("preprocess"))
    return BatchResult(program, reports, stats)
