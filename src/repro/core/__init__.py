"""The paper's contribution: SLR and STR program transformations.

* :class:`SafeLibraryReplacement` (SLR) — replace unsafe library calls with
  bounds-aware alternatives, sizing destinations via Algorithm 1.
* :class:`SafeTypeReplacement` (STR) — replace local char buffers with the
  stralloc safe-string type, rewriting all uses per Table II.
* :func:`apply_batch` — batch both transformations over a whole program.
* :mod:`repro.core.backends` — the pluggable fix-backend registry
  (slr/str/tr24731/s3lib) and per-file oracle arbitration.
"""

from .backends import (
    ARBITRATION_VERSION, ArbitrationReport, BackendCandidate,
    DEFAULT_BACKENDS, FixBackend, all_backends, arbitrate_file,
    backend_ids, get_backend, register_backend, resolve_backends,
    scoreboard, unregister_backend,
)
from .batch import (
    BatchResult, BatchStats, FileTask, FileTransformReport,
    ProcessPoolExecutor, SerialExecutor, SourceProgram, apply_batch,
    make_executor, transform_file,
)
from .bufferlen import BufferLength, BufferLengthAnalyzer, LengthFailure
from .session import AnalysisSession, ParsedUnit, get_session, reset_session
from .s3lib import S3_ALTERNATIVES, S3LibraryReplacement, apply_s3lib
from .slr import (
    SAFE_ALTERNATIVES, SafeLibraryReplacement, TR24731Replacement,
    UNSAFE_FUNCTIONS, apply_slr, apply_tr24731,
)
from .stralloc import STRALLOC_DECLARATIONS, STRALLOC_FUNCTIONS
from .strtransform import REPLACEMENT_PATTERNS, SafeTypeReplacement, apply_str
from .transform import (
    PRECONDITION_FAILED, SiteOutcome, TRANSFORMED, TransformResult,
    Transformation, sort_outcomes, verify_output_parses,
)
from .validate import (
    DifferentialInput, InputVerdict, VERDICTS, ValidationReport,
    classify, default_inputs, fuzz_inputs, validate_pair, validate_result,
)

__all__ = [
    "ARBITRATION_VERSION", "ArbitrationReport", "BackendCandidate",
    "DEFAULT_BACKENDS", "FixBackend", "all_backends", "arbitrate_file",
    "backend_ids", "get_backend", "register_backend",
    "resolve_backends", "scoreboard", "unregister_backend",
    "S3_ALTERNATIVES", "S3LibraryReplacement", "apply_s3lib",
    "TR24731Replacement", "apply_tr24731",
    "BatchResult", "BatchStats", "FileTask", "FileTransformReport",
    "ProcessPoolExecutor", "SerialExecutor", "SourceProgram",
    "apply_batch", "make_executor", "transform_file",
    "BufferLength", "BufferLengthAnalyzer", "LengthFailure",
    "AnalysisSession", "ParsedUnit", "get_session", "reset_session",
    "SAFE_ALTERNATIVES", "SafeLibraryReplacement", "UNSAFE_FUNCTIONS",
    "apply_slr",
    "STRALLOC_DECLARATIONS", "STRALLOC_FUNCTIONS",
    "REPLACEMENT_PATTERNS", "SafeTypeReplacement", "apply_str",
    "PRECONDITION_FAILED", "SiteOutcome", "TRANSFORMED", "TransformResult",
    "Transformation", "sort_outcomes", "verify_output_parses",
    "DifferentialInput", "InputVerdict", "VERDICTS", "ValidationReport",
    "classify", "default_inputs", "fuzz_inputs", "validate_pair",
    "validate_result",
]
