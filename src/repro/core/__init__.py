"""The paper's contribution: SLR and STR program transformations.

* :class:`SafeLibraryReplacement` (SLR) — replace unsafe library calls with
  bounds-aware alternatives, sizing destinations via Algorithm 1.
* :class:`SafeTypeReplacement` (STR) — replace local char buffers with the
  stralloc safe-string type, rewriting all uses per Table II.
* :func:`apply_batch` — batch both transformations over a whole program.
"""

from .batch import (
    BatchResult, BatchStats, FileTask, FileTransformReport,
    ProcessPoolExecutor, SerialExecutor, SourceProgram, apply_batch,
    make_executor, transform_file,
)
from .bufferlen import BufferLength, BufferLengthAnalyzer, LengthFailure
from .session import AnalysisSession, ParsedUnit, get_session, reset_session
from .slr import SAFE_ALTERNATIVES, SafeLibraryReplacement, UNSAFE_FUNCTIONS, apply_slr
from .stralloc import STRALLOC_DECLARATIONS, STRALLOC_FUNCTIONS
from .strtransform import REPLACEMENT_PATTERNS, SafeTypeReplacement, apply_str
from .transform import (
    PRECONDITION_FAILED, SiteOutcome, TRANSFORMED, TransformResult,
    Transformation, sort_outcomes, verify_output_parses,
)
from .validate import (
    DifferentialInput, InputVerdict, VERDICTS, ValidationReport,
    classify, default_inputs, fuzz_inputs, validate_pair, validate_result,
)

__all__ = [
    "BatchResult", "BatchStats", "FileTask", "FileTransformReport",
    "ProcessPoolExecutor", "SerialExecutor", "SourceProgram",
    "apply_batch", "make_executor", "transform_file",
    "BufferLength", "BufferLengthAnalyzer", "LengthFailure",
    "AnalysisSession", "ParsedUnit", "get_session", "reset_session",
    "SAFE_ALTERNATIVES", "SafeLibraryReplacement", "UNSAFE_FUNCTIONS",
    "apply_slr",
    "STRALLOC_DECLARATIONS", "STRALLOC_FUNCTIONS",
    "REPLACEMENT_PATTERNS", "SafeTypeReplacement", "apply_str",
    "PRECONDITION_FAILED", "SiteOutcome", "TRANSFORMED", "TransformResult",
    "Transformation", "sort_outcomes", "verify_output_parses",
    "DifferentialInput", "InputVerdict", "VERDICTS", "ValidationReport",
    "classify", "default_inputs", "fuzz_inputs", "validate_pair",
    "validate_result",
]
