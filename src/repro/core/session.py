"""The shared analysis session behind the whole transformation pipeline.

Every pipeline stage — preprocessing, SLR, STR, the post-transform
"still parses" verify, and the VM's parse-bind-typecheck prologue —
consumes C text through one :class:`AnalysisSession`.  The session keys
parsed units by content hash, so a text that any stage has already
processed is never parsed, bound, or typechecked again: SLR's input unit
is reused by the VM's "before" run, STR's output unit by the verify step
and the "after" run, and repeated evaluation passes over the same corpus
hit the cache outright.

Cached units are *annotated* (symbols bound, expression types assigned)
and carry a lazy :class:`~repro.analysis.ProgramAnalysis`, so the heavy
flow analyses are still only built for the stages that query them.

A module-level default session (:func:`get_session`) serves code that
does not thread a session explicitly; worker processes forked by the
batch executor inherit the parent's warmed default session for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import ProgramAnalysis
from ..cfront.cache import (
    CacheStats, ContentCache, content_key, preprocess_cached,
    snapshot_stats,
)
from ..cfront.parser import parse_translation_unit
from ..cfront.preprocessor import PreprocessedSource
from . import profile


@dataclass
class ParsedUnit:
    """One cached parse: annotated AST + lazy analysis facade."""

    text: str
    filename: str
    unit: object                    # ast.TranslationUnit
    analysis: ProgramAnalysis


class AnalysisSession:
    """Owns the parse/analysis cache and the preprocess entry point.

    ``include_paths`` and ``predefined`` become the session's defaults
    for :meth:`preprocess`; the parse cache is keyed on text content
    alone (a unit is a pure function of its preprocessed text — the
    filename only labels diagnostics, so the first-seen name wins).
    """

    def __init__(self, include_paths: dict[str, str] | None = None,
                 predefined: dict[str, str] | None = None,
                 *, cache_name: str = "parse", validate: bool = False):
        self.include_paths = dict(include_paths or {})
        self.predefined = dict(predefined or {})
        #: Session-wide default for the differential oracle: batch
        #: drivers that are not told ``validate=`` explicitly fall back
        #: to this flag (see :func:`repro.core.batch.apply_batch`).
        self.validate = validate
        #: Session-wide default backend chain for arbitration: batch
        #: drivers not told ``backends=`` explicitly fall back to this,
        #: then to the ``REPRO_BACKENDS`` environment knob, then to the
        #: legacy SLR→STR pipeline (``None`` everywhere).
        self.backends: tuple[str, ...] | None = None
        self._parse_cache = ContentCache(cache_name, family="parse")

    # ------------------------------------------------------------ pipeline

    def preprocess(self, text: str, filename: str = "<string>",
                   include_paths: dict[str, str] | None = None,
                   predefined: dict[str, str] | None = None,
                   ) -> PreprocessedSource:
        """Preprocess ``text`` through the content-keyed frontend cache."""
        return preprocess_cached(
            text, filename,
            include_paths if include_paths is not None
            else self.include_paths,
            predefined if predefined is not None else self.predefined)

    def parse(self, text: str, filename: str = "<unit>") -> ParsedUnit:
        """Parse + bind + typecheck ``text``, cached by content.

        The returned unit is shared between callers and must be treated
        as read-only; transformations queue edits against the *text* in
        a separate rewriter, never against the AST.
        """
        key = content_key(text)

        def build() -> ParsedUnit:
            with profile.stage("parse"):
                unit = parse_translation_unit(text, filename)
            with profile.stage("analyze"):
                analysis = ProgramAnalysis(unit).ensure_types()
            return ParsedUnit(text, filename, unit, analysis)

        return self._parse_cache.get_or_build(key, build)

    def try_parse(self, text: str, filename: str = "<unit>"
                  ) -> tuple[ParsedUnit | None, Exception | None]:
        """:meth:`parse` with the failure contained: ``(unit, None)`` on
        success, ``(None, exception)`` on any parse/bind/typecheck error.

        The containment seam for the batch pipeline — a stage that wants
        the *reason* a text does not parse (to attach it to a
        :class:`~repro.core.diagnostics.FileDiagnostic`) uses this
        instead of re-raising through the cache layer.
        """
        try:
            return self.parse(text, filename), None
        except Exception as exc:
            return None, exc

    def check_parses(self, text: str, filename: str = "<transformed>") -> bool:
        """The paper's 'no compilation errors' verify, cache-backed.

        A transformed text that equals its input (no edits queued) is a
        guaranteed cache hit; a changed text is parsed once and the unit
        is then reused by any downstream consumer (e.g. the VM run).
        """
        return self.try_parse(text, filename)[0] is not None

    # ------------------------------------------------------------ counters

    @property
    def parse_stats(self) -> CacheStats:
        return self._parse_cache.stats

    def stats_snapshot(self) -> dict[str, CacheStats]:
        """Counters for every frontend cache plus this session's parses."""
        return snapshot_stats()

    def clear(self) -> None:
        self._parse_cache.clear()


_DEFAULT_SESSION: AnalysisSession | None = None


def get_session() -> AnalysisSession:
    """The process-wide default session (created on first use)."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = AnalysisSession()
    return _DEFAULT_SESSION


def reset_session() -> AnalysisSession:
    """Replace the default session with a fresh one (tests, tooling)."""
    global _DEFAULT_SESSION
    _DEFAULT_SESSION = AnalysisSession()
    return _DEFAULT_SESSION
