"""The stralloc safe-string library (paper §II-B3, §III-C).

A modified version of qmail's ``stralloc``: the struct stores the data
pointer ``s``, a base pointer ``f`` kept at the original start of ``s`` for
bounds checking after pointer arithmetic, the logical string length
``len``, and the allocated byte count ``a``.

This module carries the *C-level* artifacts: the declarations STR injects
into transformed translation units, and a reference C implementation
(useful for reading and for compiling transformed programs outside the VM).
The VM executes the functions natively (:mod:`repro.vm.stralloc_rt`) with
full bounds checking, which is what makes the transformed SAMATE programs
observably safe.
"""

STRALLOC_DECLARATIONS = """\
typedef struct stralloc {
    char *s;
    char *f;
    unsigned int len;
    unsigned int a;
} stralloc;
int stralloc_init(stralloc *sa);
int stralloc_ready(stralloc *sa, unsigned int n);
void stralloc_free(stralloc *sa);
int stralloc_copys(stralloc *sa, const char *s);
int stralloc_copybuf(stralloc *sa, const char *buf, unsigned int n);
int stralloc_cats(stralloc *sa, const char *s);
int stralloc_catbuf(stralloc *sa, const char *buf, unsigned int n);
int stralloc_append(stralloc *sa, char c);
int stralloc_memset(stralloc *sa, char c, unsigned int n);
int stralloc_increment_by(stralloc *sa, unsigned int n);
int stralloc_decrement_by(stralloc *sa, unsigned int n);
char stralloc_get_dereferenced_char_at(stralloc *sa, long idx);
int stralloc_dereference_replace_by(stralloc *sa, long idx, char c);
int stralloc_compare(stralloc *a, stralloc *b);
int stralloc_equals(stralloc *a, stralloc *b);
int stralloc_find_char(stralloc *sa, char c);
int stralloc_substring_at(stralloc *sa, stralloc *needle);
unsigned int stralloc_length(stralloc *sa);
char *strchr(const char *s, int c);
unsigned long strlen(const char *s);
void *malloc(unsigned long size);
void free(void *ptr);
"""

#: Names of the 18 stralloc library functions (paper: "Our implementation
#: contains 18 functions").
STRALLOC_FUNCTIONS = (
    "stralloc_init", "stralloc_ready", "stralloc_free",
    "stralloc_copys", "stralloc_copybuf",
    "stralloc_cats", "stralloc_catbuf",
    "stralloc_append", "stralloc_memset",
    "stralloc_increment_by", "stralloc_decrement_by",
    "stralloc_get_dereferenced_char_at", "stralloc_dereference_replace_by",
    "stralloc_compare", "stralloc_equals",
    "stralloc_find_char", "stralloc_substring_at", "stralloc_length",
)

#: Reference C implementation, for reading and out-of-VM compilation.
STRALLOC_C_SOURCE = r"""
#include <stdlib.h>
#include <string.h>
#include "stralloc.h"

static unsigned int sa_offset(stralloc *sa) {
    /* How far s has been advanced past the base pointer f. */
    return (unsigned int)(sa->s - sa->f);
}

int stralloc_init(stralloc *sa) {
    sa->s = 0; sa->f = 0; sa->len = 0; sa->a = 0;
    return 1;
}

int stralloc_ready(stralloc *sa, unsigned int n) {
    if (sa->f == 0) {
        unsigned int want = n > sa->a ? n : sa->a;
        if (want < 16) want = 16;
        sa->f = (char *)malloc(want);
        if (!sa->f) return 0;
        sa->s = sa->f;
        sa->a = want;
        sa->len = 0;
        return 1;
    }
    if (sa_offset(sa) + n > sa->a) {
        unsigned int want = sa_offset(sa) + n;
        char *bigger = (char *)malloc(want + (want >> 3) + 16);
        if (!bigger) return 0;
        memcpy(bigger, sa->f, sa->a);
        free(sa->f);
        sa->s = bigger + sa_offset(sa);
        sa->f = bigger;
        sa->a = want + (want >> 3) + 16;
    }
    return 1;
}

void stralloc_free(stralloc *sa) {
    if (sa->f) free(sa->f);
    sa->s = 0; sa->f = 0; sa->len = 0; sa->a = 0;
}

int stralloc_copybuf(stralloc *sa, const char *buf, unsigned int n) {
    if (!stralloc_ready(sa, n + 1)) return 0;
    memcpy(sa->s, buf, n);
    sa->s[n] = 0;
    sa->len = n;
    return 1;
}

int stralloc_copys(stralloc *sa, const char *s) {
    return stralloc_copybuf(sa, s, (unsigned int)strlen(s));
}

int stralloc_catbuf(stralloc *sa, const char *buf, unsigned int n) {
    if (!stralloc_ready(sa, sa->len + n + 1)) return 0;
    memcpy(sa->s + sa->len, buf, n);
    sa->len += n;
    sa->s[sa->len] = 0;
    return 1;
}

int stralloc_cats(stralloc *sa, const char *s) {
    return stralloc_catbuf(sa, s, (unsigned int)strlen(s));
}

int stralloc_append(stralloc *sa, char c) {
    return stralloc_catbuf(sa, &c, 1);
}

static unsigned int sa_scan_len(stralloc *sa, unsigned int start) {
    /* First NUL at or after start, as strlen would find it. */
    unsigned int limit = sa->a - sa_offset(sa);
    unsigned int i;
    for (i = start; i < limit; i++) {
        if (sa->s[i] == 0) return i;
    }
    return limit;
}

int stralloc_memset(stralloc *sa, char c, unsigned int n) {
    /* Like memset: sets exactly n bytes and never NUL-terminates. */
    if (n == 0) return 1;
    if (!stralloc_ready(sa, n)) return 0;
    memset(sa->s, c, n);
    if (c == 0) sa->len = 0;
    else if (n >= sa->len) sa->len = sa_scan_len(sa, n);
    return 1;
}

int stralloc_increment_by(stralloc *sa, unsigned int n) {
    /* Advance s, but never beyond the allocated region. */
    if (sa_offset(sa) + n > sa->a) return 0;
    sa->s += n;
    if (sa->len >= n) sa->len -= n; else sa->len = 0;
    return 1;
}

int stralloc_decrement_by(stralloc *sa, unsigned int n) {
    /* Move s back toward f, never before it. */
    if (n > sa_offset(sa)) return 0;
    sa->s -= n;
    sa->len += n;
    return 1;
}

char stralloc_get_dereferenced_char_at(stralloc *sa, long idx) {
    if (idx < 0) return 0;
    if (sa->f == 0 || sa_offset(sa) + (unsigned long)idx >= sa->a) return 0;
    return sa->s[idx];
}

int stralloc_dereference_replace_by(stralloc *sa, long idx, char c) {
    /* Negative indices are buffer underwrites: refuse the store. */
    if (idx < 0) return 0;
    if (!stralloc_ready(sa, (unsigned int)idx + 1)) return 0;
    sa->s[idx] = c;
    if (c == 0) {
        if ((unsigned int)idx < sa->len) sa->len = (unsigned int)idx;
    } else if ((unsigned int)idx == sa->len) {
        sa->len = sa_scan_len(sa, (unsigned int)idx + 1);
    }
    return 1;
}

int stralloc_compare(stralloc *a, stralloc *b) {
    unsigned int i;
    unsigned int n = a->len < b->len ? a->len : b->len;
    for (i = 0; i < n; i++) {
        if (a->s[i] != b->s[i]) return a->s[i] < b->s[i] ? -1 : 1;
    }
    if (a->len == b->len) return 0;
    return a->len < b->len ? -1 : 1;
}

int stralloc_equals(stralloc *a, stralloc *b) {
    return stralloc_compare(a, b) == 0;
}

int stralloc_find_char(stralloc *sa, char c) {
    unsigned int i;
    for (i = 0; i < sa->len; i++) {
        if (sa->s[i] == c) return (int)i;
    }
    return -1;
}

int stralloc_substring_at(stralloc *sa, stralloc *needle) {
    unsigned int i, j;
    if (needle->len == 0) return 0;
    if (needle->len > sa->len) return -1;
    for (i = 0; i + needle->len <= sa->len; i++) {
        for (j = 0; j < needle->len; j++) {
            if (sa->s[i + j] != needle->s[j]) break;
        }
        if (j == needle->len) return (int)i;
    }
    return -1;
}

unsigned int stralloc_length(stralloc *sa) {
    return sa->len;
}
"""
