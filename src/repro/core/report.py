"""Pipeline instrumentation reports.

Renders the batch driver's per-file wall times and the frontend cache
counters as plain-text tables for the CLI (``repro batch --stats``) and
the evaluation report.  Kept separate from :mod:`repro.eval.report`
(which reproduces the paper's tables) — this module reports on the
*pipeline itself*.
"""

from __future__ import annotations

from ..cfront.cache import CacheStats, all_cache_stats
from . import profile
from .batch import BatchResult
from .validate import VERDICTS


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(str(headers[i])),
                  *(len(str(row[i])) for row in rows)) if rows
              else len(str(headers[i])) for i in range(len(headers))]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_batch_stats(result: BatchResult) -> str:
    """Per-file wall time + site counts for one batch run."""
    degraded = any(not r.ok for r in result.reports)
    arbitrated = any(r.arbitration is not None for r in result.reports)
    # Arbitration always judges, so its runs always get an oracle
    # column — even when every candidate was rejected (the column is
    # then exactly where the rejection reasons surface).
    validated = arbitrated or any(r.validation is not None
                                  for r in result.reports)
    rows = []
    for report in result.reports:
        slr = report.slr
        str_ = report.str_
        arb = report.arbitration
        if arb is not None and arb.winning_candidate is not None:
            winning = arb.winning_candidate
            fix_cell = (f"{winning.backend}:"
                        f"{winning.transformed_count}/"
                        f"{winning.candidates}")
        elif arb is not None:
            fix_cell = "none"
        else:
            fix_cell = None
        row = [
            report.filename,
            f"{report.wall_time * 1000.0:8.1f}",
            f"{slr.transformed_count}/{slr.candidates}" if slr else "-",
            f"{str_.transformed_count}/{str_.candidates}" if str_ else "-",
            "yes" if report.parses else "NO",
        ]
        if arbitrated:
            row.append(fix_cell if fix_cell is not None else "-")
        if degraded:
            row.append(report.status if report.ok
                       else report.status.upper())
        if validated:
            # The oracle cell names the winning backend under
            # arbitration — the verdict shown is *that candidate's*.
            winner = f" ({arb.winner})" if arb and arb.winner else ""
            if report.validation is None:
                # No winning verdict: under arbitration, surface why the
                # best candidate was thrown out (e.g. a parse-rejected
                # transform) instead of a bare dash.
                detail = None
                if arb is not None and arb.winner is None:
                    detail = next(
                        (c for c in arb.candidates if c.rejected), None)
                row.append(f"{detail.backend} {detail.verdict_summary()}"
                           if detail is not None else "-")
            elif report.validation.ok:
                row.append(f"ok{winner}")
            else:
                row.append(
                    f"CHANGED "
                    f"x{report.validation.semantics_changed}{winner}")
        rows.append(row)
    headers = ["file", "wall ms", "SLR", "STR", "parses"]
    if arbitrated:
        headers.append("winner")
    if degraded:
        headers.append("status")
    if validated:
        headers.append("oracle")
    table = _table(headers, rows)
    stats = result.stats
    if stats is not None:
        table += (f"\n\nbatch: {len(result.reports)} files in "
                  f"{stats.wall_time:.3f}s with {stats.jobs} job(s)")
        if stats.deduplicated:
            table += (f"; {stats.deduplicated} duplicate-content "
                      f"task(s) shared one result")
    return table


def render_validation(result: BatchResult) -> str:
    """Per-file differential-oracle verdict counters for one batch run."""
    rows = []
    for report in result.validations():
        counts = report.counts()
        rows.append([report.filename,
                     "unchanged" if report.unchanged
                     else len(report.verdicts),
                     *(counts[verdict] for verdict in VERDICTS)])
    totals = result.validation_counts()
    if rows:
        rows.append(["Total",
                     sum(len(r.verdicts) for r in result.validations()),
                     *(totals.get(verdict, 0) for verdict in VERDICTS)])
    table = _table(["file", "inputs", *VERDICTS], rows)
    verdict_line = ("semantics preserved: yes"
                    if result.semantics_preserved else
                    f"semantics preserved: NO "
                    f"({totals.get('semantics-changed', 0)} divergences)")
    return f"{table}\n\n{verdict_line}"


def render_backend_scoreboard(result: BatchResult) -> str:
    """Per-backend arbitration tallies for one batch run
    (``repro batch --backends a,b,c``): how often each backend ran,
    changed a file, won, lost, or was disqualified by the oracle."""
    arbitrations = result.arbitrations()
    if not arbitrations:
        return "no arbitrations recorded"
    board = result.backend_scoreboard()
    # Preserve the requested backend order (the tie-break order).
    order: list[str] = []
    for report in arbitrations:
        for backend_id in report.backends:
            if backend_id in board and backend_id not in order:
                order.append(backend_id)
    order.extend(b for b in sorted(board) if b not in order)
    site_mode = any(a.mode == "site" for a in arbitrations)
    # The breaker column appears only when a breaker actually tripped,
    # keeping the healthy-run table in the PR 6 shape.
    breaker_mode = any(row.get("breaker_skips", 0)
                       for row in board.values())
    rows = [[backend_id,
             row["attempted"], row["changed"], row["selected"],
             row["runner_up"], row["rejected"], row["no_change"],
             row["not_applicable"], row["errors"],
             *([row.get("breaker_skips", 0)] if breaker_mode else []),
             row["overflow_prevented"], row["sites_transformed"],
             *([row.get("sites_won", 0)] if site_mode else [])]
            for backend_id in order
            for row in (board[backend_id],)]
    table = _table(["backend", "attempted", "changed", "selected",
                    "runner-up", "rejected", "no-change", "n/a",
                    "errors",
                    *(["breaker-skips"] if breaker_mode else []),
                    "overflow-prevented", "sites",
                    *(["sites-won"] if site_mode else [])], rows)
    summary = (f"arbitration: {len(arbitrations)} file(s), "
               f"{result.backends_attempted} candidate(s) attempted, "
               f"{result.backends_rejected} rejected by the oracle")
    lines = [table, "", summary]
    if breaker_mode:
        skipped = " ".join(
            f"{backend}={board[backend].get('breaker_skips', 0)}"
            for backend in order
            if board[backend].get("breaker_skips", 0))
        lines.append(f"circuit breakers: candidates skipped while "
                     f"open: {skipped}")
    if site_mode:
        winners = result.site_winner_totals()
        breakdown = " ".join(f"{backend}={count}" for backend, count
                             in sorted(winners.items())) or "none"
        lines.append(f"site mode: {result.composites_shipped} "
                     f"composite(s) shipped; site winners: {breakdown}")
    rejected = [(report.filename, candidate)
                for report in arbitrations
                for candidate in report.candidates
                if candidate.rejected]
    if rejected:
        lines.append("rejected candidates:")
        lines.extend(f"  {filename} {candidate.backend}: "
                     f"{candidate.verdict_summary()}"
                     for filename, candidate in rejected)
    return "\n".join(lines)


def render_diagnostics(result: BatchResult) -> str:
    """Contained-failure report for one batch run: every per-file
    diagnostic, the per-stage failure tallies, and the executor's
    supervision counters (retries / timeouts / worker deaths)."""
    diagnostics = result.diagnostics()
    if not diagnostics:
        return "no contained failures"
    rows = []
    for diag in diagnostics:
        message = diag.message.splitlines()[0] if diag.message else ""
        if len(message) > 60:
            message = message[:59] + "…"
        rows.append([diag.filename, diag.stage, diag.kind,
                     diag.location or "-", diag.retries, message])
    table = _table(["file", "stage", "kind", "location", "retries",
                    "message"], rows)
    stage_counts = result.stage_failure_counts()
    stage_line = "failures by stage: " + " ".join(
        f"{stage}={count}" for stage, count
        in sorted(stage_counts.items()))
    status = result.status_counts()
    status_line = ("files: " + " ".join(f"{name}={status[name]}"
                                        for name in status))
    lines = [table, "", stage_line, status_line]
    supervision = result.stats.supervision if result.stats else {}
    if any(supervision.values()):
        lines.append("supervision: " + " ".join(
            f"{name}={count}" for name, count
            in sorted(supervision.items())))
    return "\n".join(lines)


def diagnostics_payload(result: BatchResult) -> dict:
    """The machine-readable shape behind ``--diagnostics-json``."""
    payload = {
        "program": result.program.name,
        "files": len(result.reports),
        "status_counts": result.status_counts(),
        "stage_failure_counts": result.stage_failure_counts(),
        "supervision": dict(result.stats.supervision)
        if result.stats else {},
        "diagnostics": [diag.as_dict()
                        for diag in result.diagnostics()],
        "statuses": {report.filename: report.status
                     for report in result.reports},
    }
    arbitrations = result.arbitrations()
    if arbitrations:
        payload["backends"] = {
            "requested": list(arbitrations[0].backends),
            "attempted": result.backends_attempted,
            "rejected": result.backends_rejected,
            "winners": result.winners(),
            "scoreboard": result.backend_scoreboard(),
            "arbitrations": [report.as_dict()
                             for report in arbitrations],
        }
        if any(a.mode == "site" for a in arbitrations):
            payload["backends"]["arbitration_mode"] = "site"
            payload["backends"]["site_winners"] = \
                result.site_winner_totals()
            payload["backends"]["composites_shipped"] = \
                result.composites_shipped
    return payload


def render_cache_stats(stats: list[CacheStats] | None = None) -> str:
    """Hit/miss counters for every frontend cache in this process,
    memory LRU and disk layer both."""
    stats = all_cache_stats() if stats is None else stats
    rows = [[s.name, s.hits, s.misses, s.evictions,
             f"{100.0 * s.hit_rate:.1f}%",
             s.disk_hits, s.disk_misses,
             _fmt_bytes(s.bytes_read), _fmt_bytes(s.bytes_written)]
            for s in stats]
    return _table(["cache", "hits", "misses", "evictions", "hit rate",
                   "disk hits", "disk misses", "read", "written"],
                  rows)


def render_profile(result: BatchResult) -> str:
    """The per-stage timing breakdown for one batch run
    (``repro batch --profile`` / ``REPRO_PROFILE=1``)."""
    if result.stats is None:
        return "(no stage timings recorded)"
    return profile.render_profile(result.stats.stage_times)


def _fmt_bytes(n: int) -> str:
    if n >= 1024 * 1024:
        return f"{n / (1024 * 1024):.1f}MB"
    if n >= 1024:
        return f"{n / 1024:.1f}KB"
    return str(n)
