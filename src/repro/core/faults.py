"""Deterministic fault injection for the transformation pipeline.

Fault-containment claims are only credible when they are *exercised*:
this module lets the chaos suite (``tests/test_fault_injection.py``) and
ad-hoc debugging plant failures at pipeline stage boundaries and then
prove that :func:`repro.core.batch.apply_batch` degrades exactly as
documented — one report per file, structured diagnostics for the faulted
files, byte-identical transforms for the rest, at any worker count.

Faults are configured through ``REPRO_FAULTS``, a comma-separated list
of ``stage:kind:rate`` rules:

``stage``
    Where to fire — ``preprocess``, ``slr``, ``str``, ``verify``,
    ``validate`` (the per-file stage guards in
    :func:`repro.core.batch.transform_file`), ``store`` (the
    persistent artifact store's read path), or the run-journal hooks
    ``dispatch`` / ``journal`` (fired by
    :class:`repro.core.runlog.RunJournal` around its write-ahead-log
    appends — the crash-recovery suite plants ``parent-kill`` there).
``kind``
    ``exception``    raise :class:`InjectedFault` at the stage boundary;
    ``hang``         stall the stage (``REPRO_FAULT_HANG_S`` seconds in
                     a supervised pool worker, where the watchdog is
                     expected to kill it; a short cooperative stall +
                     :class:`InjectedHang` elsewhere);
    ``kill``         die without cleanup — ``os._exit`` in a pool
                     worker (exercising dead-worker detection), a
                     raised :class:`InjectedKill` in-process;
    ``parent-kill``  ``os._exit`` in the *parent* (scheduler) process —
                     a no-op inside pool workers — simulating the whole
                     batch driver dying mid-run with no cleanup, the
                     crash ``--resume`` must recover from;
    ``corrupt``      flip bytes in a persistent-store entry before it
                     is unpickled (``store`` stage only);
    ``disk-full``    make the next matching journal/store write raise
                     ``OSError(ENOSPC)``, proving durable-run I/O
                     degrades warn-once instead of failing the batch
                     (consumed via :func:`should_fail_disk`, not
                     :func:`check`).
``rate``
    Fraction of subjects the rule fires on, in ``[0, 1]``.

Which subjects fire is a pure function of ``(stage, kind, subject)`` —
a keyed hash, not a PRNG — so the same files fault in every process, at
every ``--jobs`` value, in every retry.  That determinism is what makes
"n reports, k diagnostics, identical at jobs=1 and jobs=4" a testable
property rather than a flaky one.

The module is inert unless ``REPRO_FAULTS`` is set: every hook begins
with a cached truthiness check of the environment value, so production
runs pay one dict lookup per stage.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

#: Stage names :func:`check` is called with (documentation + validation).
#: Under backend arbitration every registered backend id is also a stage
#: (``tr24731``, ``s3lib``, …) — a ``tr24731:exception:1.0`` rule fails
#: exactly that backend's candidates and lets the next-best fix win.
INJECTABLE_STAGES = ("preprocess", "slr", "str", "tr24731", "s3lib",
                     "verify", "validate", "store", "dispatch",
                     "journal")

#: Supported fault kinds.
KINDS = ("exception", "hang", "kill", "parent-kill", "corrupt",
         "disk-full")

#: How long a ``hang`` fault stalls inside a supervised pool worker
#: (long enough that any sane ``REPRO_TASK_TIMEOUT`` expires first).
DEFAULT_HANG_S = 30.0

#: Exit status an injected ``kill`` dies with (recognizable in logs).
KILL_EXIT_CODE = 87


class InjectedFault(RuntimeError):
    """The ``exception`` fault kind: an ordinary in-stage failure."""


class InjectedHang(BaseException):
    """Raised after a cooperative (non-watchdog) hang stall.

    Derives from :class:`BaseException` so the per-stage guards (which
    catch :class:`Exception`) let it propagate to the per-file handler:
    a hang takes out the whole file attempt, exactly like a watchdog
    kill would, keeping serial and pool runs in agreement.
    """


class InjectedKill(BaseException):
    """In-process stand-in for an abrupt worker death (serial runs)."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``stage:kind:rate`` clause."""

    stage: str
    kind: str
    rate: float


def parse_spec(spec: str) -> list[FaultRule]:
    """Parse a ``REPRO_FAULTS`` value; malformed clauses are rejected.

    Raising (rather than skipping) on a bad clause is deliberate: a typo
    in a chaos run must not silently test nothing.
    """
    rules = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) != 3:
            raise ValueError(f"bad REPRO_FAULTS clause {clause!r}; "
                             f"expected stage:kind:rate")
        stage, kind, rate_text = parts
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r} in {clause!r}; "
                             f"choose from {KINDS}")
        try:
            rate = float(rate_text)
        except ValueError:
            raise ValueError(f"bad fault rate {rate_text!r} in "
                             f"{clause!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate {rate} outside [0, 1] "
                             f"in {clause!r}")
        rules.append(FaultRule(stage, kind, rate))
    return rules


# Parsed-spec memo keyed on the raw env value, so repeated checks per
# stage cost one dict probe; tests that monkeypatch REPRO_FAULTS get a
# fresh parse automatically.
_SPEC_MEMO: tuple[str, list[FaultRule]] | None = None


def active_rules() -> list[FaultRule]:
    global _SPEC_MEMO
    spec = os.environ.get("REPRO_FAULTS", "")
    if not spec:
        return []
    if _SPEC_MEMO is not None and _SPEC_MEMO[0] == spec:
        return _SPEC_MEMO[1]
    rules = parse_spec(spec)
    _SPEC_MEMO = (spec, rules)
    return rules


def faults_enabled() -> bool:
    """Is any fault rule configured?  (One env lookup on the hot path.)"""
    return bool(os.environ.get("REPRO_FAULTS"))


#: Stages whose faults never alter a file's *report* — they kill or
#: starve the scheduler around it.  Rules limited to these stages do
#: not salt the per-task work key, so a run crashed by a
#: ``journal:parent-kill`` rule resumes (faults disarmed) onto the same
#: keys it journaled.
RESULT_NEUTRAL_STAGES = ("dispatch", "journal")


def affects_results() -> bool:
    """Does any active rule target a stage that shapes report content?"""
    return any(rule.stage not in RESULT_NEUTRAL_STAGES
               for rule in active_rules())


def should_fire(rule: FaultRule, subject: str) -> bool:
    """Deterministic per-subject coin flip at the rule's rate.

    Uses a keyed blake2b hash — stable across processes, platforms, and
    ``PYTHONHASHSEED`` — so the faulted subset is a pure function of the
    rule and the subject name.
    """
    if rule.rate >= 1.0:
        return True
    if rule.rate <= 0.0:
        return False
    digest = hashlib.blake2b(
        f"repro-fault|{rule.stage}|{rule.kind}|{subject}".encode("utf-8"),
        digest_size=8).digest()
    fraction = int.from_bytes(digest, "big") / float(1 << 64)
    return fraction < rule.rate


def faulted_subjects(stage: str, kind: str, subjects) -> list[str]:
    """Which of ``subjects`` the active rules would fault at ``stage``
    with ``kind`` — the chaos suite uses this to compute its expected
    diagnostic set from the same coin flips the pipeline will make."""
    hits = []
    for subject in subjects:
        for rule in active_rules():
            if rule.stage == stage and rule.kind == kind \
                    and should_fire(rule, subject):
                hits.append(subject)
                break
    return hits


# ------------------------------------------------------------ worker mode

_IN_WORKER = False


def mark_worker() -> None:
    """Called once at supervised-pool-worker startup: ``kill`` faults may
    really ``os._exit`` here, and ``hang`` faults stall for real."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    return _IN_WORKER


def hang_seconds() -> float:
    try:
        return float(os.environ.get("REPRO_FAULT_HANG_S",
                                    str(DEFAULT_HANG_S)))
    except ValueError:
        return DEFAULT_HANG_S


# ------------------------------------------------------------ injection

def check(stage: str, subject: str) -> None:
    """Fire any matching fault at a stage boundary.

    Called by the pipeline's stage guards with the file name as the
    subject.  ``corrupt`` rules are ignored here (they live on the
    store's read path — see :func:`corrupt_entry`).
    """
    if not faults_enabled():
        return
    for rule in active_rules():
        if rule.stage != stage \
                or rule.kind in ("corrupt", "disk-full") \
                or not should_fire(rule, subject):
            continue
        if rule.kind == "exception":
            raise InjectedFault(
                f"injected {stage} fault for {subject}")
        if rule.kind == "hang":
            if in_worker():
                # Stall long enough for the watchdog; if no watchdog is
                # armed the worker recovers cooperatively afterwards.
                time.sleep(hang_seconds())
            else:
                time.sleep(min(hang_seconds(), 0.05))
            raise InjectedHang(
                f"injected {stage} hang for {subject}")
        if rule.kind == "kill":
            if in_worker():
                os._exit(KILL_EXIT_CODE)
            raise InjectedKill(
                f"injected {stage} kill for {subject}")
        if rule.kind == "parent-kill":
            # Only the scheduler dies; inside a pool worker this rule
            # is inert (killing a worker is what plain ``kill`` does).
            if not in_worker():
                os._exit(KILL_EXIT_CODE)


def should_fail_disk(stage: str, subject: str) -> bool:
    """Would an active ``disk-full`` rule hit this write?

    Unlike :func:`check` this never raises — the journal and store call
    it *inside* the try blocks that absorb real ``OSError`` so the
    injected ENOSPC exercises the same degradation path a full disk
    would.
    """
    if not faults_enabled():
        return False
    for rule in active_rules():
        if rule.stage == stage and rule.kind == "disk-full" \
                and should_fire(rule, subject):
            return True
    return False


def corrupt_entry(key: str, data: bytes) -> bytes:
    """Corrupt a persistent-store entry on its way to ``pickle.loads``.

    The store must treat the result as a miss and self-heal — a corrupt
    cache byte must never surface as a wrong value or a crash.
    """
    if not faults_enabled():
        return data
    for rule in active_rules():
        if rule.stage == "store" and rule.kind == "corrupt" \
                and should_fire(rule, key):
            # Flip the header and truncate: reliably unloadable.
            return b"\xff" + data[: max(0, len(data) // 2)]
    return data
