"""Algorithm 1 of the paper: statically compute a destination buffer's size.

``get_buffer_length`` takes the AST expression used as a destination buffer
(e.g. the first argument of ``strcpy``) and returns a *C expression string*
that evaluates to the number of bytes available at that destination —
``sizeof(buf)`` for statically allocated buffers, ``malloc_usable_size(p)``
for heap buffers, with ``±n`` corrections for pointer arithmetic — or a
failure carrying the reason the paper's evaluation taxonomy names:

* ``no-heap-alloc``    — the pointer's reaching definition contains no
  visible heap allocation (allocated elsewhere / passed as parameter);
* ``aliased``          — the pointer is aliased (Algorithm 1 line 27);
* ``aliased-struct``   — the buffer is an aliased struct member;
* ``struct-redefined`` — the whole struct is redefined on the control-flow
  path between the member's definition and its use;
* ``array-of-buffers`` — the buffer lives in an array of pointers (no shape
  analysis, paper failure 3);
* ``ternary-alloc``    — the definition is a ternary with allocations in
  its branches (paper failure 4);
* ``no-unique-def``    — zero or several definitions reach the use;
* ``unsupported-expr`` — an expression form Algorithm 1 does not cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import ProgramAnalysis
from ..analysis.pointsto import HEAP_ALLOCATORS
from ..cfront import astnodes as ast
from ..cfront.ctypes_model import ArrayType, PointerType, StructType

_MAX_DEPTH = 32


@dataclass
class BufferLength:
    """A successfully computed buffer length."""

    expr_text: str          # C expression for the byte count
    kind: str               # 'static' (sizeof) or 'heap' (malloc_usable_size)
    adjustment: int = 0     # accumulated pointer-arithmetic correction

    def render(self) -> str:
        if self.adjustment == 0:
            return self.expr_text
        op = "-" if self.adjustment > 0 else "+"
        return f"{self.expr_text} {op} {abs(self.adjustment)}"


@dataclass
class LengthFailure:
    reason: str
    detail: str = ""

    def __bool__(self) -> bool:      # failures are falsy
        return False


class BufferLengthAnalyzer:
    """Implements GETBUFFERLENGTH over one analyzed translation unit.

    ``check_aliases=False`` disables Algorithm 1's ISALIASED bail-outs
    (lines 27 and 39) — used only by the ablation benchmarks to show why
    the check is load-bearing: without it, the transformation computes
    sizes from stale definitions and silently changes behaviour.
    """

    def __init__(self, analysis: ProgramAnalysis, source_text: str,
                 *, check_aliases: bool = True,
                 fix_ternary_alloc: bool = False):
        self.analysis = analysis
        self.text = source_text
        self.check_aliases = check_aliases
        # Paper §IV-B failure 4 calls the ternary-of-allocations case "an
        # easy structural fix" left undone; enabling this implements it:
        # when *every* branch of the ternary heap-allocates, the buffer is
        # heap storage whichever branch ran, so malloc_usable_size(B) is
        # correct without knowing which branch was taken.
        self.fix_ternary_alloc = fix_ternary_alloc

    def get_buffer_length(self, expr: ast.Expression
                          ) -> BufferLength | LengthFailure:
        return self._compute(expr, expr, 0)

    # ------------------------------------------------------------ internals

    def _compute(self, expr: ast.Expression, use_site: ast.Node,
                 depth: int) -> BufferLength | LengthFailure:
        if depth > _MAX_DEPTH:
            return LengthFailure("no-unique-def", "definition chain too deep")
        expr = _skip_parens(expr)

        # Lines 2-4: assignment expression -> recurse on RHS.
        if isinstance(expr, ast.Assignment) and expr.op == "=":
            return self._compute(expr.rhs, use_site, depth + 1)

        # Lines 5-7: array access expression.
        if isinstance(expr, ast.ArrayAccess):
            return self._array_access(expr, use_site, depth)

        # Lines 8-15: pointer-arithmetic binary expression.
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            return self._pointer_arith(expr, use_site, depth)

        # Lines 16-20: prefix increment/decrement.
        if isinstance(expr, ast.Unary) and expr.op in ("++", "--") \
                and not expr.is_postfix:
            inner = self._compute(expr.operand, use_site, depth + 1)
            if isinstance(inner, LengthFailure):
                return inner
            inner.adjustment += 1 if expr.op == "++" else -1
            return inner

        # Postfix ++/-- yield the pre-step value: size unchanged.
        if isinstance(expr, ast.Unary) and expr.op in ("++", "--"):
            return self._compute(expr.operand, use_site, depth + 1)

        # Lines 21-22: cast expression.
        if isinstance(expr, ast.Cast):
            return self._compute(expr.operand, use_site, depth + 1)

        # Lines 23-34: identifier expression.
        if isinstance(expr, ast.Identifier):
            return self._identifier(expr, use_site, depth)

        # Lines 35-50: struct element access expression.
        if isinstance(expr, ast.FieldAccess):
            return self._element_access(expr, use_site, depth)

        # &buf[i] or &x: treat as a pointer into the underlying object.
        if isinstance(expr, ast.Unary) and expr.op == "&":
            inner = _skip_parens(expr.operand)
            if isinstance(inner, ast.ArrayAccess):
                base_len = self._compute(inner.base, use_site, depth + 1)
                if isinstance(base_len, LengthFailure):
                    return base_len
                index = _constant_int(inner.index)
                if index is None:
                    return LengthFailure("unsupported-expr",
                                         "&buf[i] with non-constant index")
                base_len.adjustment += index
                return base_len
            return self._compute(inner, use_site, depth + 1)

        if isinstance(expr, ast.StringLiteral):
            return BufferLength(str(len(expr.value) + 1), "static")

        return LengthFailure(
            "unsupported-expr",
            f"cannot size a {type(expr).__name__} expression")

    # ----------------------------------------------------------- case: a[i]

    def _array_access(self, expr: ast.ArrayAccess, use_site: ast.Node,
                      depth: int) -> BufferLength | LengthFailure:
        accessed_type = expr.ctype
        if accessed_type is not None and accessed_type.is_pointer:
            # char *bufs[N]; bufs[i] — array of buffers, no shape analysis.
            return LengthFailure("array-of-buffers",
                                 "buffer stored in an array of pointers")
        if accessed_type is not None and accessed_type.is_array:
            # Row of a 2-D array: sizeof the accessed row.
            return BufferLength(f"sizeof({self._src(expr)})", "static")
        base = _skip_parens(expr.base)
        if isinstance(base, ast.Identifier):
            # GETARRAYIDENTIFIER(B) then SIZEOF: writing starts at element
            # i of the array, so correct by the constant index if known.
            result = self._identifier(base, use_site, depth)
            if isinstance(result, LengthFailure):
                return result
            index = _constant_int(expr.index)
            if index is not None:
                result.adjustment += index
            return result
        return LengthFailure("unsupported-expr", "complex array access")

    # -------------------------------------------------------- case: p + n

    def _pointer_arith(self, expr: ast.Binary, use_site: ast.Node,
                       depth: int) -> BufferLength | LengthFailure:
        op = expr.op
        # Identify numeric part and buffer part (lines 12-13).
        lhs_num = _constant_int(expr.lhs)
        rhs_num = _constant_int(expr.rhs)
        if rhs_num is not None and lhs_num is None:
            buffer_part, num = expr.lhs, rhs_num
        elif lhs_num is not None and rhs_num is None and op == "+":
            buffer_part, num = expr.rhs, lhs_num
        else:
            return LengthFailure("unsupported-expr",
                                 "pointer arithmetic with non-constant "
                                 "offset")
        result = self._compute(buffer_part, use_site, depth + 1)
        if isinstance(result, LengthFailure):
            return result
        # newop: '+' becomes '-' and vice versa (line 11): writing at
        # buf + n leaves size(buf) - n bytes.
        result.adjustment += num if op == "+" else -num
        return result

    # ------------------------------------------------------ case: identifier

    def _identifier(self, expr: ast.Identifier, use_site: ast.Node,
                    depth: int) -> BufferLength | LengthFailure:
        symbol = expr.symbol
        if symbol is None:
            return LengthFailure("unsupported-expr",
                                 f"unbound identifier {expr.name!r}")
        ctype = symbol.ctype
        # Line 24-25: array type -> sizeof.
        if isinstance(ctype, ArrayType):
            return BufferLength(f"sizeof({expr.name})", "static")
        if not isinstance(ctype, PointerType):
            return LengthFailure("unsupported-expr",
                                 f"{expr.name} is not a buffer")
        # Line 27: alias check.
        if self.check_aliases and self.analysis.aliases.is_aliased(symbol):
            return LengthFailure("aliased",
                                 f"pointer {expr.name} is aliased")
        # Line 30: the definition reaching B.
        definition = self._reaching_def(use_site, symbol, None)
        if definition is None:
            return LengthFailure("no-unique-def",
                                 f"no unique definition of {expr.name} "
                                 f"reaches the call")
        return self._from_definition(definition, expr.name, use_site, depth)

    # --------------------------------------------------- case: s.member

    def _element_access(self, expr: ast.FieldAccess, use_site: ast.Node,
                        depth: int) -> BufferLength | LengthFailure:
        member_type = expr.ctype
        if member_type is not None and member_type.is_array:
            # Line 36-37.
            return BufferLength(f"sizeof({self._src(expr)})", "static")
        base = _skip_parens(expr.base)
        if not isinstance(base, ast.Identifier) or base.symbol is None:
            return LengthFailure("unsupported-expr",
                                 "nested struct member access")
        struct_symbol = base.symbol
        # Line 39: alias analysis treats the struct as an aggregate; any
        # alias of the struct makes the member's size untrackable.
        if self.check_aliases and (
                self.analysis.aliases.struct_is_aliased(struct_symbol) or
                self.analysis.aliases.is_aliased(struct_symbol)):
            return LengthFailure("aliased-struct",
                                 f"struct {base.name} is aliased")
        if member_type is not None and not member_type.is_pointer:
            return LengthFailure("unsupported-expr",
                                 f"member {expr.member} is not a buffer")
        # Line 42: definition of the member reaching B.
        definition = self._reaching_def(use_site, struct_symbol, expr.member)
        if definition is None:
            return LengthFailure("no-unique-def",
                                 f"no unique definition of "
                                 f"{base.name}.{expr.member}")
        # Lines 43-46: whole-struct redefinition on the path def -> use.
        if self._struct_redefined_between(definition, use_site,
                                          struct_symbol):
            return LengthFailure("struct-redefined",
                                 f"struct {base.name} redefined between "
                                 f"member definition and use")
        return self._from_definition(definition, self._src(expr), use_site,
                                     depth)

    # ------------------------------------------------------------- shared

    def _from_definition(self, definition, buffer_text: str,
                         use_site: ast.Node,
                         depth: int) -> BufferLength | LengthFailure:
        value = definition.value
        if value is None:
            return LengthFailure("no-heap-alloc",
                                 f"definition of {buffer_text} carries no "
                                 f"value (parameter or opaque write)")
        stripped = _skip_parens(value)
        while isinstance(stripped, ast.Cast):
            stripped = _skip_parens(stripped.operand)
        # Lines 31-32: heap allocation in the definition.
        if isinstance(stripped, ast.Call) and \
                stripped.callee_name in HEAP_ALLOCATORS:
            return BufferLength(f"malloc_usable_size({buffer_text})", "heap")
        # Paper failure 4: ternary whose branches allocate.
        if isinstance(stripped, ast.Conditional) and \
                _contains_allocation(stripped):
            if self.fix_ternary_alloc and \
                    _is_allocation(stripped.then_expr) and \
                    _is_allocation(stripped.else_expr):
                return BufferLength(
                    f"malloc_usable_size({buffer_text})", "heap")
            return LengthFailure("ternary-alloc",
                                 "definition is a ternary with heap "
                                 "allocation in its branches")
        if _contains_allocation(stripped):
            return LengthFailure("no-heap-alloc",
                                 "allocation buried in a compound "
                                 "expression")
        # Lines 33-34: other assignment -> recurse on its RHS.
        return self._compute(stripped, definition.node or use_site,
                             depth + 1)

    def _reaching_def(self, use_site: ast.Node, symbol, member):
        fn = use_site.enclosing_function()
        if fn is None:
            return None
        reaching = self.analysis.reaching_of(fn.name)
        if reaching is None:
            return None
        return reaching.unique_strong_def(use_site, symbol, member)

    def _struct_redefined_between(self, definition, use_site: ast.Node,
                                  struct_symbol) -> bool:
        fn = use_site.enclosing_function()
        if fn is None:
            return True
        reaching = self.analysis.reaching_of(fn.name)
        cfg = self.analysis.cfg_of(fn.name)
        if reaching is None or cfg is None:
            return True
        whole_defs = [d for d in reaching.defs_reaching(use_site,
                                                        struct_symbol)
                      if d.member is None and d is not definition]
        if not whole_defs:
            return False
        use_node = cfg.node_for(use_site)
        if use_node is None:
            return True
        for whole in whole_defs:
            if cfg.reachable_between(definition.cfg_node, use_node,
                                     whole.cfg_node):
                return True
        return False

    def _src(self, node: ast.Node) -> str:
        return node.source_text(self.text)


def _skip_parens(expr: ast.Node) -> ast.Node:
    # Parenthesized expressions keep their inner node; nothing to skip in
    # our AST, but Comma expressions yield their RHS value.
    while isinstance(expr, ast.Comma):
        expr = expr.rhs
    return expr


def _constant_int(expr: ast.Node) -> int | None:
    expr = _skip_parens(expr)
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.CharLiteral):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _constant_int(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.Binary):
        lhs = _constant_int(expr.lhs)
        rhs = _constant_int(expr.rhs)
        if lhs is None or rhs is None:
            return None
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
    return None


def _contains_allocation(expr: ast.Node) -> bool:
    return any(isinstance(node, ast.Call)
               and node.callee_name in HEAP_ALLOCATORS
               for node in expr.walk())


def _is_allocation(expr: ast.Node) -> bool:
    """Is this expression (behind casts) directly a heap-allocator call?"""
    while isinstance(expr, (ast.Cast, ast.Comma)):
        expr = expr.operand if isinstance(expr, ast.Cast) else expr.rhs
    return isinstance(expr, ast.Call) and \
        expr.callee_name in HEAP_ALLOCATORS
