"""The four miniature open-source-style corpus programs (paper §IV-B)."""

from ..core.batch import SourceProgram
from . import minigmp, minipng, minitiff, minizlib

PROGRAM_BUILDERS = {
    "zlib": minizlib.build,
    "libpng": minipng.build,
    "GMP": minigmp.build,
    "libtiff": minitiff.build,
}


def build_all() -> dict[str, SourceProgram]:
    """Build all four corpus programs (zlib, libpng, GMP, libtiff)."""
    return {name: builder() for name, builder in PROGRAM_BUILDERS.items()}


__all__ = ["PROGRAM_BUILDERS", "build_all", "SourceProgram"]
