"""The four miniature open-source-style corpus programs (paper §IV-B),
plus the mutational synthesizer (:mod:`repro.corpus.synth`) that scales
the population to arbitrary file counts with known ground truth."""

from ..core.batch import SourceProgram
from . import minigmp, minipng, minitiff, minizlib

PROGRAM_BUILDERS = {
    "zlib": minizlib.build,
    "libpng": minipng.build,
    "GMP": minigmp.build,
    "libtiff": minitiff.build,
}


def build_all() -> dict[str, SourceProgram]:
    """Build all four corpus programs (zlib, libpng, GMP, libtiff)."""
    return {name: builder() for name, builder in PROGRAM_BUILDERS.items()}


def build_synth(count: int, seed: int) -> SourceProgram:
    """Synthesized population as a batch-ready program (see ``synth``)."""
    from .synth import build_program
    return build_program(count, seed)


__all__ = ["PROGRAM_BUILDERS", "build_all", "build_synth",
           "SourceProgram"]
