"""mini-GMP: a miniature arbitrary-precision integer library.

Real functionality (base-1e9 limb bignums: add, sub, mul, compare,
decimal parse/print) plus the corpus's largest planted site population —
GMP contributes most of the paper's sprintf sites, and carries the
singleton ternary-allocation SLR failure.  The paper's own memcpy example
(mpq/set_str.c) is reproduced in ``gmp_set_str_digits``.
"""

from __future__ import annotations

from ..core.batch import SourceProgram
from .sitegen import SiteEmitter

_HEADER = """\
#ifndef MINIGMP_H
#define MINIGMP_H
#define GMP_LIMBS 8
#define GMP_BASE 1000000000L

typedef struct gmp_int {
    long limb[GMP_LIMBS];
    int used;
    int negative;
} gmp_int;

void gmp_zero(gmp_int *z);
void gmp_set_long(gmp_int *z, long value);
int gmp_cmp(const gmp_int *a, const gmp_int *b);
void gmp_add(gmp_int *out, const gmp_int *a, const gmp_int *b);
void gmp_mul_small(gmp_int *out, const gmp_int *a, long factor);
long gmp_to_long(const gmp_int *z);
int gmp_from_string(gmp_int *z, const char *digits);
char *gmp_set_str_digits(const char *str, unsigned long numlen);
void run_sites_gmp_a(void);
void run_sites_gmp_b(void);
#endif
"""

_BIGNUM_C = """\
#include "minigmp.h"

void gmp_zero(gmp_int *z)
{
    int i;
    for (i = 0; i < GMP_LIMBS; i++) {
        z->limb[i] = 0;
    }
    z->used = 1;
    z->negative = 0;
}

void gmp_set_long(gmp_int *z, long value)
{
    gmp_zero(z);
    if (value < 0) {
        z->negative = 1;
        value = -value;
    }
    z->used = 0;
    while (value > 0 && z->used < GMP_LIMBS) {
        z->limb[z->used] = value % GMP_BASE;
        value = value / GMP_BASE;
        z->used = z->used + 1;
    }
    if (z->used == 0) {
        z->used = 1;
    }
}

int gmp_cmp(const gmp_int *a, const gmp_int *b)
{
    int i;
    if (a->used != b->used) {
        return a->used < b->used ? -1 : 1;
    }
    for (i = a->used - 1; i >= 0; i--) {
        if (a->limb[i] != b->limb[i]) {
            return a->limb[i] < b->limb[i] ? -1 : 1;
        }
    }
    return 0;
}

void gmp_add(gmp_int *out, const gmp_int *a, const gmp_int *b)
{
    long carry = 0;
    int i;
    int top = a->used > b->used ? a->used : b->used;
    gmp_zero(out);
    out->used = top;
    for (i = 0; i < top; i++) {
        long total = a->limb[i] + b->limb[i] + carry;
        out->limb[i] = total % GMP_BASE;
        carry = total / GMP_BASE;
    }
    if (carry > 0 && top < GMP_LIMBS) {
        out->limb[top] = carry;
        out->used = top + 1;
    }
}

void gmp_mul_small(gmp_int *out, const gmp_int *a, long factor)
{
    long carry = 0;
    int i;
    gmp_zero(out);
    out->used = a->used;
    for (i = 0; i < a->used; i++) {
        long total = a->limb[i] * factor + carry;
        out->limb[i] = total % GMP_BASE;
        carry = total / GMP_BASE;
    }
    while (carry > 0 && out->used < GMP_LIMBS) {
        out->limb[out->used] = carry % GMP_BASE;
        carry = carry / GMP_BASE;
        out->used = out->used + 1;
    }
}

long gmp_to_long(const gmp_int *z)
{
    long value = 0;
    int i;
    for (i = z->used - 1; i >= 0; i--) {
        value = value * GMP_BASE + z->limb[i];
    }
    return z->negative ? -value : value;
}

int gmp_from_string(gmp_int *z, const char *digits)
{
    int i = 0;
    gmp_int ten, scaled, digit, sum;
    gmp_zero(z);
    gmp_set_long(&ten, 10);
    while (digits[i] >= '0' && digits[i] <= '9') {
        gmp_mul_small(&scaled, z, 10);
        gmp_set_long(&digit, digits[i] - '0');
        gmp_add(&sum, &scaled, &digit);
        *z = sum;
        i = i + 1;
    }
    return i;
}
"""

# The paper's GMP example (mpq/set_str.c line 49): copy numlen digit
# characters into a freshly allocated buffer with memcpy.  This is a
# transformable memcpy site with the Option-1 rewrite (numlen is used to
# NUL-terminate afterwards).
_SETSTR_C = """\
#include <stdlib.h>
#include <string.h>
#include "minigmp.h"

char *gmp_set_str_digits(const char *str, unsigned long numlen)
{
    char *num = malloc(numlen + 1);
    memcpy(num, str, numlen);
    num[numlen] = '\\0';
    return num;
}
"""

_TEST_C = """\
#include <stdio.h>
#include <stdlib.h>
#include "minigmp.h"

static void test_arith(void)
{
    gmp_int a, b, sum, prod;
    gmp_set_long(&a, 999999999L);
    gmp_set_long(&b, 1);
    gmp_add(&sum, &a, &b);
    gmp_mul_small(&prod, &sum, 7);
    printf("sum=%ld prod=%ld cmp=%d\\n", gmp_to_long(&sum),
           gmp_to_long(&prod), gmp_cmp(&a, &b));
}

static void test_parse(void)
{
    gmp_int z;
    int consumed = gmp_from_string(&z, "123456789123");
    printf("parsed=%ld consumed=%d\\n", gmp_to_long(&z), consumed);
}

static void test_set_str(void)
{
    char *digits = gmp_set_str_digits("271828182845", 6);
    printf("digits=%s\\n", digits);
    free(digits);
}

int main(void)
{
    printf("== mini-GMP test suite ==\\n");
    test_arith();
    test_parse();
    test_set_str();
    run_sites_gmp_a();
    run_sites_gmp_b();
    printf("ALL TESTS PASSED\\n");
    return 0;
}
"""

SITE_PLAN_A = {
    "strcpy": (11, 4),
    "strcat": (2, 0),
    "sprintf": (50, 1),
    "memcpy": (17, 6),
}
SITE_PLAN_B = {
    "sprintf": (48, 1),
    "memcpy": (5, 6),
}
STR_OK_BUFFERS_A = 31
STR_OK_BUFFERS_B = 30
STR_FAIL_BUFFERS = 1


def _sites_file(suffix: str, plan: dict, str_ok: int, str_fail: int,
                *, ternary: bool) -> str:
    emitter = SiteEmitter(f"gmp{suffix}", with_ternary_failure=ternary)
    emitter.emit(plan, 0, 0)
    emitter.str_ok_buffers(str_ok)
    for _ in range(str_fail):
        emitter.str_fail_buffer()
    return (
        "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"
        "#include <stdarg.h>\n#include \"minigmp.h\"\n\n"
        + emitter.render_functions()
        + f"\n\nvoid run_sites_gmp_{suffix}(void)\n{{\n"
        + emitter.render_calls()
        + "\n}\n")


def build() -> SourceProgram:
    return SourceProgram(
        name="GMP",
        files={
            "bignum.c": _BIGNUM_C,
            "set_str.c": _SETSTR_C,
            "sites_gmp_a.c": _sites_file("a", SITE_PLAN_A,
                                         STR_OK_BUFFERS_A,
                                         STR_FAIL_BUFFERS, ternary=True),
            "sites_gmp_b.c": _sites_file("b", SITE_PLAN_B,
                                         STR_OK_BUFFERS_B, 0,
                                         ternary=False),
            "test_gmp.c": _TEST_C,
        },
        headers={"minigmp.h": _HEADER},
        main_file="test_gmp.c",
    )
