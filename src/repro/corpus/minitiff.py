"""mini-LibTIFF: a miniature TIFF-like tag/image library.

Real functionality (IFD tag directory model, byte-order readers, a
tiff2pdf-style string escaper) plus planted sites.  The escaper is a
line-faithful reproduction of LibTIFF 3.8.2's ``t2p_write_pdf_string``
vulnerability (paper §IV-A2): a ``char buffer[5]`` receives ``sprintf``
output of ``"\\%.3o"`` whose argument sign-extends for bytes >= 0x80,
producing 11 octal digits and overrunning the buffer.  SLR fixes it by
rewriting to ``g_snprintf`` with ``sizeof(buffer)``.
"""

from __future__ import annotations

from ..core.batch import SourceProgram
from .sitegen import SiteEmitter

_HEADER = """\
#ifndef MINITIFF_H
#define MINITIFF_H

#define TIFF_MAX_TAGS 16

struct tiff_tag {
    int id;
    int type;
    long count;
    long value;
};

struct tiff_dir {
    struct tiff_tag tags[TIFF_MAX_TAGS];
    int tag_count;
};

long tiff_read_u16(const unsigned char *p, int big_endian);
long tiff_read_u32(const unsigned char *p, int big_endian);
int tiff_dir_add(struct tiff_dir *dir, int id, int type, long count,
                 long value);
long tiff_dir_find(const struct tiff_dir *dir, int id);
int t2p_write_pdf_string(const char *pdfstr, char *output);
void run_sites_tiff(void);
#endif
"""

_TAGS_C = """\
#include "minitiff.h"

long tiff_read_u16(const unsigned char *p, int big_endian)
{
    if (big_endian) {
        return ((long)p[0] << 8) | (long)p[1];
    }
    return ((long)p[1] << 8) | (long)p[0];
}

long tiff_read_u32(const unsigned char *p, int big_endian)
{
    if (big_endian) {
        return (tiff_read_u16(p, 1) << 16) | tiff_read_u16(p + 2, 1);
    }
    return (tiff_read_u16(p + 2, 0) << 16) | tiff_read_u16(p, 0);
}

int tiff_dir_add(struct tiff_dir *dir, int id, int type, long count,
                 long value)
{
    if (dir->tag_count >= TIFF_MAX_TAGS) {
        return 0;
    }
    dir->tags[dir->tag_count].id = id;
    dir->tags[dir->tag_count].type = type;
    dir->tags[dir->tag_count].count = count;
    dir->tags[dir->tag_count].value = value;
    dir->tag_count = dir->tag_count + 1;
    return 1;
}

long tiff_dir_find(const struct tiff_dir *dir, int id)
{
    int i;
    for (i = 0; i < dir->tag_count; i++) {
        if (dir->tags[i].id == id) {
            return dir->tags[i].value;
        }
    }
    return -1;
}
"""

# LibTIFF 3.8.2 tools/tiff2pdf.c, t2p_write_pdf_string, line 3671: the
# escaping loop.  Characters with the high bit set (pdfstr[i] & 0x80),
# DEL, and control characters are written as \\ooo octal escapes.  The
# char is sign-extended when passed to sprintf, so a byte >= 0x80 prints
# eleven octal digits into the five-byte buffer.
_TIFF2PDF_C = """\
#include <stdio.h>
#include <string.h>
#include "minitiff.h"

int t2p_write_pdf_string(const char *pdfstr, char *output)
{
    char buffer[5];
    int i;
    int len;
    int written = 0;
    len = (int)strlen(pdfstr);
    output[0] = '\\0';
    for (i = 0; i < len; i++) {
        if ((pdfstr[i] & 0x80) || (pdfstr[i] == 127) || (pdfstr[i] < 32)) {
            int pos;
            int k;
            sprintf(buffer, "\\\\%.3o", pdfstr[i]);
            pos = (int)strlen(output);
            for (k = 0; buffer[k] != '\\0'; k++) {
                output[pos + k] = buffer[k];
            }
            output[pos + k] = '\\0';
            written = written + 4;
        } else {
            int pos = (int)strlen(output);
            output[pos] = pdfstr[i];
            output[pos + 1] = '\\0';
            written = written + 1;
        }
    }
    return written;
}
"""

_TEST_C = """\
#include <stdio.h>
#include "minitiff.h"

static void test_byteorder(void)
{
    unsigned char raw[4];
    raw[0] = 0x12;
    raw[1] = 0x34;
    raw[2] = 0x56;
    raw[3] = 0x78;
    printf("u16be=%lx u16le=%lx u32be=%lx\\n",
           tiff_read_u16(raw, 1), tiff_read_u16(raw, 0),
           tiff_read_u32(raw, 1));
}

static void test_directory(void)
{
    struct tiff_dir dir;
    dir.tag_count = 0;
    tiff_dir_add(&dir, 256, 3, 1, 640);
    tiff_dir_add(&dir, 257, 3, 1, 480);
    tiff_dir_add(&dir, 306, 2, 20, 0);
    printf("width=%ld height=%ld missing=%ld\\n",
           tiff_dir_find(&dir, 256), tiff_dir_find(&dir, 257),
           tiff_dir_find(&dir, 999));
}

static void test_pdf_string(void)
{
    char out[128];
    /* Benign DocumentName: no sign-extending bytes. */
    int n = t2p_write_pdf_string("doc\\tname", out);
    printf("pdfstr=%s n=%d\\n", out, n);
}

int main(void)
{
    printf("== mini-LibTIFF test suite ==\\n");
    test_byteorder();
    test_directory();
    test_pdf_string();
    run_sites_tiff();
    printf("ALL TESTS PASSED\\n");
    return 0;
}
"""

SITE_PLAN = {
    "strcpy": (6, 2),
    "strcat": (2, 0),
    "sprintf": (19, 0),     # +1 sprintf in t2p_write_pdf_string = 20 sites
    "vsprintf": (0, 1),
    "memcpy": (12, 8),
}
STR_OK_BUFFERS = 21
STR_FAIL_BUFFERS = 0

#: An attack input for the CVE: a DocumentTag with a UTF-8 byte (>= 0x80).
ATTACK_DOCUMENT_TAG = "caf\xc3"


def _sites_file() -> str:
    emitter = SiteEmitter("tiff")
    emitter.emit(SITE_PLAN, 0, 0)
    emitter.str_ok_buffers(STR_OK_BUFFERS)
    for _ in range(STR_FAIL_BUFFERS):
        emitter.str_fail_buffer()
    return (
        "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"
        "#include <stdarg.h>\n#include \"minitiff.h\"\n\n"
        + emitter.render_functions()
        + "\n\nvoid run_sites_tiff(void)\n{\n"
        + emitter.render_calls()
        + "\n}\n")


def build() -> SourceProgram:
    return SourceProgram(
        name="libtiff",
        files={
            "tags.c": _TAGS_C,
            "tiff2pdf.c": _TIFF2PDF_C,
            "sites_tiff.c": _sites_file(),
            "test_tiff.c": _TEST_C,
        },
        headers={"minitiff.h": _HEADER},
        main_file="test_tiff.c",
    )


def cve_attack_program() -> str:
    """A self-contained driver that feeds the CVE attack input to the
    vulnerable function (used by the case-study example and tests)."""
    standalone = _TIFF2PDF_C.replace('#include "minitiff.h"\n', "")
    return standalone + """

int main(void)
{
    char out[128];
    /* DocumentTag containing a UTF-8 byte: 0xC3 sign-extends. */
    char doc[5];
    doc[0] = 'c';
    doc[1] = 'a';
    doc[2] = 'f';
    doc[3] = (char)0xC3;
    doc[4] = '\\0';
    t2p_write_pdf_string(doc, out);
    printf("escaped=%s\\n", out);
    return 0;
}
"""
