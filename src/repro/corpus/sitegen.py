"""Generators for transformation *sites* planted in the corpus programs.

The paper's RQ2 evaluation (Tables V/VI, Figure 2) batch-applies SLR and
STR to four open-source programs and reports, per unsafe function and per
buffer, how many sites pass the preconditions and why the rest fail.  Our
miniature corpus plants a scaled-faithful population of such sites:

* SLR sites that transform (static or heap destination with a visible
  allocation), and SLR sites that fail for exactly the four reasons
  §IV-B enumerates (no visible heap allocation / aliased struct member /
  array of buffers / ternary allocation);
* STR buffers whose every use matches Table II, and STR buffers passed to
  a user-defined function that writes through the pointer (the single
  failure cause behind Table VI's column C3).

Every site is an executable function; the program's test driver calls all
of them and prints deterministic output, so the "make test" analogue can
compare before/after behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SitePlan:
    """How many sites of each kind a corpus program plants."""

    # SLR sites: function name -> (transformable, failing) counts.
    slr: dict[str, tuple[int, int]] = field(default_factory=dict)
    # STR buffers: (transformable, failing-interprocedural) counts.
    str_ok: int = 0
    str_fail: int = 0

    @property
    def slr_sites(self) -> int:
        return sum(ok + bad for ok, bad in self.slr.values())

    @property
    def slr_transformable(self) -> int:
        return sum(ok for ok, _ in self.slr.values())

    @property
    def str_sites(self) -> int:
        return self.str_ok + self.str_fail


class SiteEmitter:
    """Emits site functions and the calls that exercise them."""

    def __init__(self, prefix: str, *, with_singleton_failures: bool = False,
                 with_ternary_failure: bool = False):
        self.prefix = prefix
        self.functions: list[str] = []
        self.calls: list[str] = []
        self._counter = 0
        self._memcpy_ok_flip = 0
        self._memcpy_fail_count = 0
        self._strcpy_fail_count = 0
        # Only one corpus program carries each of the paper's singleton
        # failure causes (aliased struct / array of buffers / ternary).
        self.with_singleton_failures = with_singleton_failures
        self.with_ternary_failure = with_ternary_failure

    def _name(self, kind: str) -> str:
        self._counter += 1
        return f"{self.prefix}_{kind}_{self._counter:03d}"

    # ---------------------------------------------------------- SLR sites

    def slr_ok_strcpy(self) -> None:
        name = self._name("strcpy_ok")
        size = 24 + (self._counter % 5) * 8
        self.functions.append(f"""\
static void {name}(const char *tag)
{{
    char label[{size}];
    strcpy(label, tag);
    printf("{name}:%s\\n", label);
}}""")
        self.calls.append(f'{name}("t{self._counter % 10}");')

    def slr_fail_strcpy_param(self) -> None:
        """Failure reason 1: destination is a parameter (no visible
        allocation)."""
        name = self._name("strcpy_param")
        self.functions.append(f"""\
static void {name}(char *out, const char *tag)
{{
    strcpy(out, tag);
}}""")
        helper = f"{name}_driver"
        self.functions.append(f"""\
static void {helper}(void)
{{
    char room[64];
    {name}(room, "p{self._counter % 10}");
    printf("{name}:%s\\n", room);
}}""")
        self.calls.append(f"{helper}();")

    def slr_fail_strcpy_ternary(self) -> None:
        """Failure reason 4: definition is a ternary of allocations."""
        name = self._name("strcpy_ternary")
        self.functions.append(f"""\
static void {name}(int big)
{{
    char *buf = big ? malloc(128) : malloc(32);
    strcpy(buf, "ternary");
    printf("{name}:%s\\n", buf);
    free(buf);
}}""")
        self.calls.append(f"{name}(1);")

    def slr_ok_strcat(self) -> None:
        name = self._name("strcat_ok")
        size = 32 + (self._counter % 3) * 16
        self.functions.append(f"""\
static void {name}(const char *suffix)
{{
    char path[{size}] = "base";
    strcat(path, suffix);
    printf("{name}:%s\\n", path);
}}""")
        self.calls.append(f'{name}(".ext");')

    def slr_ok_sprintf(self) -> None:
        name = self._name("sprintf_ok")
        size = 40 + (self._counter % 4) * 8
        self.functions.append(f"""\
static void {name}(int value)
{{
    char line[{size}];
    sprintf(line, "v=%d", value);
    printf("{name}:%s\\n", line);
}}""")
        self.calls.append(f"{name}({self._counter});")

    def slr_fail_sprintf_param(self) -> None:
        name = self._name("sprintf_param")
        self.functions.append(f"""\
static void {name}(char *out, int value)
{{
    sprintf(out, "v=%d", value);
}}""")
        helper = f"{name}_driver"
        self.functions.append(f"""\
static void {helper}(void)
{{
    char room[64];
    {name}(room, {self._counter});
    printf("{name}:%s\\n", room);
}}""")
        self.calls.append(f"{helper}();")

    def slr_ok_vsprintf(self) -> None:
        name = self._name("vsprintf_ok")
        self.functions.append(f"""\
static void {name}(const char *fmt, ...)
{{
    char message[96];
    va_list ap;
    va_start(ap, fmt);
    vsprintf(message, fmt, ap);
    va_end(ap);
    printf("{name}:%s\\n", message);
}}""")
        self.calls.append(f'{name}("%d/%s", {self._counter}, "v");')

    def slr_fail_vsprintf_param(self) -> None:
        name = self._name("vsprintf_param")
        self.functions.append(f"""\
static void {name}(char *out, const char *fmt, ...)
{{
    va_list ap;
    va_start(ap, fmt);
    vsprintf(out, fmt, ap);
    va_end(ap);
}}""")
        helper = f"{name}_driver"
        self.functions.append(f"""\
static void {helper}(void)
{{
    char room[96];
    {name}(room, "x=%d", {self._counter});
    printf("{name}:%s\\n", room);
}}""")
        self.calls.append(f"{helper}();")

    def slr_ok_memcpy_stack(self) -> None:
        name = self._name("memcpy_ok")
        size = 16 + (self._counter % 4) * 8
        self.functions.append(f"""\
static void {name}(const char *chunk, unsigned long n)
{{
    char staging[{size}];
    memcpy(staging, chunk, n);
    staging[n] = '\\0';
    printf("{name}:%s\\n", staging);
}}""")
        self.calls.append(f'{name}("cdata", 5);')

    def slr_ok_memcpy_heap(self) -> None:
        name = self._name("memcpyh_ok")
        self.functions.append(f"""\
static void {name}(const char *chunk)
{{
    unsigned long n = strlen(chunk);
    char *copy = malloc(n + 1);
    memcpy(copy, chunk, n);
    copy[n] = '\\0';
    printf("{name}:%s\\n", copy);
    free(copy);
}}""")
        self.calls.append(f'{name}("hdata{self._counter % 10}");')

    def slr_fail_memcpy_param(self) -> None:
        name = self._name("memcpy_param")
        self.functions.append(f"""\
static void {name}(char *out, const char *chunk, unsigned long n)
{{
    memcpy(out, chunk, n);
    out[n] = '\\0';
}}""")
        helper = f"{name}_driver"
        self.functions.append(f"""\
static void {helper}(void)
{{
    char room[48];
    {name}(room, "block", 5);
    printf("{name}:%s\\n", room);
}}""")
        self.calls.append(f"{helper}();")

    def slr_fail_memcpy_aliased_struct(self) -> None:
        """Failure reason 2: buffer is a member of an aliased struct."""
        name = self._name("memcpy_alias")
        self.functions.append(f"""\
struct {name}_ctx {{
    char *data;
    unsigned long used;
}};

static void {name}(void)
{{
    struct {name}_ctx ctx;
    struct {name}_ctx *view = &ctx;
    ctx.data = malloc(40);
    view->used = 4;
    memcpy(ctx.data, "wxyz", 4);
    ctx.data[4] = '\\0';
    printf("{name}:%s:%lu\\n", ctx.data, view->used);
    free(ctx.data);
}}""")
        self.calls.append(f"{name}();")

    def slr_fail_memcpy_array_of_buffers(self) -> None:
        """Failure reason 3: destination lives in an array of pointers."""
        name = self._name("memcpy_rows")
        self.functions.append(f"""\
static void {name}(void)
{{
    char *rows[4];
    int i;
    for (i = 0; i < 4; i++) {{
        rows[i] = malloc(16);
    }}
    memcpy(rows[2], "rowdata", 7);
    rows[2][7] = '\\0';
    printf("{name}:%s\\n", rows[2]);
    for (i = 0; i < 4; i++) {{
        free(rows[i]);
    }}
}}""")
        self.calls.append(f"{name}();")

    # ---------------------------------------------------------- STR sites

    _STR_OK_SHAPES = 6
    #: candidate buffers each shape contributes
    _SHAPE_BUFFERS = (1, 1, 1, 1, 2, 2)

    def str_ok_buffers(self, buffers: int) -> None:
        """Emit sites contributing exactly ``buffers`` candidate buffers."""
        remaining = buffers
        while remaining > 0:
            shape = self._counter % self._STR_OK_SHAPES
            cost = self._SHAPE_BUFFERS[shape]
            if cost > remaining:
                # Skip to a single-buffer shape by bumping the counter.
                self._counter += 1
                continue
            self.str_ok_buffer()
            remaining -= cost

    def str_ok_buffer(self) -> None:
        """A local buffer whose uses all match Table II patterns."""
        shape = self._counter % self._STR_OK_SHAPES
        name = self._name("buf_ok")
        if shape == 0:
            body = f"""\
    char scratch[24];
    memset(scratch, 'z', 4);
    scratch[4] = seed[0];
    scratch[5] = '\\0';
    printf("{name}:%s:%d\\n", scratch, (int)strlen(scratch));"""
        elif shape == 1:
            body = f"""\
    char *text = "static seed";
    char head;
    head = text[0];
    printf("{name}:%c\\n", head);"""
        elif shape == 2:
            body = f"""\
    char *work = malloc(32);
    work[0] = 'w';
    work[1] = seed[0];
    work[2] = '\\0';
    printf("{name}:%s\\n", work);"""
        elif shape == 3:
            body = f"""\
    char window[16];
    int i;
    for (i = 0; i < 8; i++) {{
        window[i] = (char)('a' + i);
    }}
    window[8] = '\\0';
    printf("{name}:%s\\n", window);"""
        elif shape == 4:
            body = f"""\
    char track[20];
    char *cursor;
    memset(track, 'm', 10);
    track[10] = '\\0';
    cursor = track;
    cursor++;
    printf("{name}:%c%c\\n", *cursor, cursor[1]);"""
        else:
            body = f"""\
    char left[12], right[12];
    left[0] = seed[0];
    left[1] = '\\0';
    right[0] = 'r';
    right[1] = '\\0';
    right[0] = left[0];
    printf("{name}:%s=%s\\n", left, right);"""
        self.functions.append(f"""\
static void {name}(const char *seed)
{{
{body}
}}""")
        self.calls.append(f'{name}("s{self._counter % 7}");')

    def str_fail_buffer(self) -> None:
        """A buffer handed to a user-defined function that writes it."""
        name = self._name("buf_esc")
        writer = f"{name}_fill"
        self.functions.append(f"""\
static void {writer}(char *sink, char mark)
{{
    sink[0] = mark;
    sink[1] = '\\0';
}}""")
        self.functions.append(f"""\
static void {name}(void)
{{
    char exposed[16];
    {writer}(exposed, 'e');
    printf("{name}:%s\\n", exposed);
}}""")
        self.calls.append(f"{name}();")

    # ------------------------------------------------------------- output

    def emit(self, plan_counts: dict[str, tuple[int, int]],
             str_ok: int, str_fail: int) -> None:
        """Emit sites per the plan.

        ``plan_counts`` maps unsafe function name to (transformable,
        failing) counts; failing sites rotate through the paper's failure
        reasons where several apply.
        """
        ok_emitters = {
            "strcpy": self.slr_ok_strcpy,
            "strcat": self.slr_ok_strcat,
            "sprintf": self.slr_ok_sprintf,
            "vsprintf": self.slr_ok_vsprintf,
            "memcpy": self._ok_memcpy_rotating,
        }
        fail_emitters = {
            "strcpy": self._fail_strcpy_rotating,
            "strcat": self.slr_fail_strcpy_param,
            "sprintf": self.slr_fail_sprintf_param,
            "vsprintf": self.slr_fail_vsprintf_param,
            "memcpy": self._fail_memcpy_rotating,
        }
        for fn, (ok, bad) in plan_counts.items():
            for _ in range(ok):
                ok_emitters[fn]()
            for _ in range(bad):
                fail_emitters[fn]()
        for _ in range(str_ok):
            self.str_ok_buffer()
        for _ in range(str_fail):
            self.str_fail_buffer()

    def _ok_memcpy_rotating(self) -> None:
        self._memcpy_ok_flip += 1
        if self._memcpy_ok_flip % 2:
            self.slr_ok_memcpy_stack()
        else:
            self.slr_ok_memcpy_heap()

    def _fail_memcpy_rotating(self) -> None:
        self._memcpy_fail_count += 1
        # The paper saw the aliased-struct and array-of-buffers causes
        # exactly once each; everything else was the missing-allocation
        # cause.
        if self.with_singleton_failures and self._memcpy_fail_count == 2:
            self.slr_fail_memcpy_aliased_struct()
        elif self.with_singleton_failures and self._memcpy_fail_count == 3:
            self.slr_fail_memcpy_array_of_buffers()
        else:
            self.slr_fail_memcpy_param()

    def _fail_strcpy_rotating(self) -> None:
        self._strcpy_fail_count += 1
        if self.with_ternary_failure and self._strcpy_fail_count == 2:
            self.slr_fail_strcpy_ternary()
        else:
            self.slr_fail_strcpy_param()

    def render_functions(self) -> str:
        return "\n\n".join(self.functions)

    def render_calls(self, indent: str = "    ") -> str:
        return "\n".join(indent + call for call in self.calls)
