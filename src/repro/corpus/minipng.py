"""mini-libpng: a miniature PNG-like image library.

Real functionality (chunk model with CRC, Paeth/Sub/Up scanline filters,
a tiny image round-trip) plus the planted SLR/STR site population.  This
program carries the two singleton SLR failure causes the paper reports:
the aliased-struct memcpy and the array-of-row-buffers memcpy.
"""

from __future__ import annotations

from ..core.batch import SourceProgram
from .sitegen import SiteEmitter

_HEADER = """\
#ifndef MINIPNG_H
#define MINIPNG_H
#include <stddef.h>

struct png_chunk {
    unsigned long tag;
    unsigned long length;
    unsigned long crc;
};

unsigned long png_crc(const unsigned char *data, size_t n);
unsigned long png_tag(const char *name);
int png_filter_sub(unsigned char *row, int n);
int png_unfilter_sub(unsigned char *row, int n);
int png_filter_up(unsigned char *row, const unsigned char *prev, int n);
int png_unfilter_up(unsigned char *row, const unsigned char *prev, int n);
int png_paeth(int a, int b, int c);
void run_sites_png(void);
#endif
"""

_CHUNKS_C = """\
#include "minipng.h"

unsigned long png_crc(const unsigned char *data, size_t n)
{
    unsigned long crc = 0xffffffffUL;
    size_t i;
    int k;
    for (i = 0; i < n; i++) {
        crc = crc ^ data[i];
        for (k = 0; k < 8; k++) {
            if (crc & 1UL) {
                crc = (crc >> 1) ^ 0xedb88320UL;
            } else {
                crc = crc >> 1;
            }
        }
    }
    return crc ^ 0xffffffffUL;
}

unsigned long png_tag(const char *name)
{
    unsigned long tag = 0;
    int i;
    for (i = 0; i < 4 && name[i] != '\\0'; i++) {
        tag = (tag << 8) | (unsigned long)(unsigned char)name[i];
    }
    return tag;
}
"""

_FILTERS_C = """\
#include "minipng.h"

int png_paeth(int a, int b, int c)
{
    int p = a + b - c;
    int pa = p > a ? p - a : a - p;
    int pb = p > b ? p - b : b - p;
    int pc = p > c ? p - c : c - p;
    if (pa <= pb && pa <= pc) {
        return a;
    }
    if (pb <= pc) {
        return b;
    }
    return c;
}

int png_filter_sub(unsigned char *row, int n)
{
    int i;
    for (i = n - 1; i > 0; i--) {
        row[i] = (unsigned char)(row[i] - row[i - 1]);
    }
    return n;
}

int png_unfilter_sub(unsigned char *row, int n)
{
    int i;
    for (i = 1; i < n; i++) {
        row[i] = (unsigned char)(row[i] + row[i - 1]);
    }
    return n;
}

int png_filter_up(unsigned char *row, const unsigned char *prev, int n)
{
    int i;
    for (i = 0; i < n; i++) {
        row[i] = (unsigned char)(row[i] - prev[i]);
    }
    return n;
}

int png_unfilter_up(unsigned char *row, const unsigned char *prev, int n)
{
    int i;
    for (i = 0; i < n; i++) {
        row[i] = (unsigned char)(row[i] + prev[i]);
    }
    return n;
}
"""

_TEST_C = """\
#include <stdio.h>
#include "minipng.h"

static void test_tags(void)
{
    printf("IHDR=%lx IDAT=%lx\\n", png_tag("IHDR"), png_tag("IDAT"));
}

static void test_filters(void)
{
    unsigned char row[16];
    unsigned char prev[16];
    int i;
    int ok = 1;
    for (i = 0; i < 16; i++) {
        row[i] = (unsigned char)(i * 11 + 3);
        prev[i] = (unsigned char)(i * 5);
    }
    png_filter_sub(row, 16);
    png_unfilter_sub(row, 16);
    for (i = 0; i < 16; i++) {
        if (row[i] != (unsigned char)(i * 11 + 3)) {
            ok = 0;
        }
    }
    png_filter_up(row, prev, 16);
    png_unfilter_up(row, prev, 16);
    for (i = 0; i < 16; i++) {
        if (row[i] != (unsigned char)(i * 11 + 3)) {
            ok = 0;
        }
    }
    printf("filters ok=%d paeth=%d\\n", ok, png_paeth(9, 11, 10));
}

static void test_crc(void)
{
    unsigned char chunk[20];
    int i;
    for (i = 0; i < 20; i++) {
        chunk[i] = (unsigned char)(i + 65);
    }
    printf("chunkcrc=%lx\\n", png_crc(chunk, 20));
}

int main(void)
{
    printf("== mini-libpng test suite ==\\n");
    test_tags();
    test_filters();
    test_crc();
    run_sites_png();
    printf("ALL TESTS PASSED\\n");
    return 0;
}
"""

SITE_PLAN = {
    "strcpy": (7, 3),
    "strcat": (2, 0),
    "sprintf": (24, 1),
    "vsprintf": (1, 0),
    "memcpy": (25, 15),
}
STR_OK_BUFFERS = 36
STR_FAIL_BUFFERS = 1


def _sites_file() -> str:
    # This program carries the two singleton memcpy failure causes
    # (§IV-B: aliased struct member, array of buffers).
    emitter = SiteEmitter("png", with_singleton_failures=True)
    emitter.emit(SITE_PLAN, 0, 0)
    emitter.str_ok_buffers(STR_OK_BUFFERS)
    for _ in range(STR_FAIL_BUFFERS):
        emitter.str_fail_buffer()
    return (
        "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"
        "#include <stdarg.h>\n#include \"minipng.h\"\n\n"
        + emitter.render_functions()
        + "\n\nvoid run_sites_png(void)\n{\n"
        + emitter.render_calls()
        + "\n}\n")


def build() -> SourceProgram:
    return SourceProgram(
        name="libpng",
        files={
            "chunks.c": _CHUNKS_C,
            "filters.c": _FILTERS_C,
            "sites_png.c": _sites_file(),
            "test_png.c": _TEST_C,
        },
        headers={"minipng.h": _HEADER},
        main_file="test_png.c",
    )
