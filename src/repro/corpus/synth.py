"""Mutational corpus synthesizer for batch-scale evaluation.

Real corpora top out at a few hundred files; proving the pipeline at
10k-file scale needs a population whose ground truth is still known
exactly.  This module mass-produces single-file C programs by
cross-breeding buffer-handling idioms from the mini corpus (string
copies into fixed windows, memcpy of scan lines, index loops over
limbs) with the SAMATE flow-variant machinery: each mutant plants one
overflowing — or provably safe — write whose dst size and write length
are chosen by construction, then wraps the flawed block in one of the
18 Juliet-style control-flow variants.

Every mutant's label is checkable against the bounds-checked VM: an
``overflow`` mutant must trap with a memory fault, a ``safe`` mutant
must run to a clean exit 0.  ``synthesize(..., validate=True)`` keeps
only mutants the oracle agrees with (disagreement is a bug in the
builders and raises after an attempt cap).  Generation is driven
entirely by ``random.Random(seed)``, so the same (count, seed) pair is
byte-for-byte reproducible across runs and machines.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from random import Random

from ..core.batch import SourceProgram
from ..samate.flows import FLOW_VARIANTS, FlowVariant, _indent

_HEADERS = "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"

#: Buffer / function name pools, flavoured after the mini corpus so the
#: synthesized population exercises the same naming shapes the analyses
#: see on real files.
_BUF_NAMES = ("window", "chunk_buf", "row_bytes", "limb_data",
              "scan_line", "strip_buf", "name_buf", "dict_buf",
              "palette", "field_buf")
_SRC_NAMES = ("payload", "packet", "segment", "residue", "run_data",
              "header_bytes", "sample_row")
_FN_NAMES = ("inflate_copy", "png_row_fill", "tiff_strip_pack",
             "gmp_limb_store", "adler_feed", "crc_mix", "idat_stash",
             "deflate_spill", "palette_load", "field_splice")

MUTANT_KINDS = ("strcpy", "strcat", "memcpy", "index_loop", "off_by_one")


@dataclass(frozen=True)
class SynthMutant:
    """One synthesized single-file C program with known ground truth."""

    name: str               # stem, also the .c filename without suffix
    kind: str               # which builder produced it (MUTANT_KINDS)
    flow_vid: int           # Juliet-style flow variant id (1..18)
    flow_name: str
    label: str              # "overflow" | "safe"
    dst_size: int           # destination buffer size in bytes
    write_len: int          # bytes the flawed block writes (incl. NUL)
    source: str             # complete compilable C text

    @property
    def filename(self) -> str:
        return self.name + ".c"

    @property
    def expected_overflow(self) -> bool:
        return self.label == "overflow"


def _literal(length: int, phase: int) -> str:
    """A C string literal of exactly ``length`` visible characters."""
    return '"' + "".join(chr(ord("A") + (phase + i) % 26)
                         for i in range(length)) + '"'


# --------------------------------------------------------------------------
# Mutant-kind builders.  Each returns (decls, stmts, dst_size, write_len)
# where write_len counts every byte the flawed block stores into dst
# (including the terminating NUL for string sinks).  Overflow holds
# exactly when write_len > dst_size for forward writes; the off_by_one
# builder also plants underwrites, where the single store lands below
# the buffer instead.

def _build_strcpy(rng: Random, dst: str, src: str, overflow: bool):
    d = rng.randrange(8, 41)
    n = rng.randrange(d, d + 8) if overflow else rng.randrange(1, d)
    decls = (f"char {dst}[{d}];\n"
             f"const char *{src} = {_literal(n, rng.randrange(26))};")
    stmts = (f"strcpy({dst}, {src});\n"
             f'printf("copied %d\\n", (int)strlen({dst}));')
    return decls, stmts, d, n + 1


def _build_strcat(rng: Random, dst: str, src: str, overflow: bool):
    d = rng.randrange(8, 41)
    len_a = rng.randrange(1, d - 1)          # prefix always fits
    room = d - 1 - len_a                     # growth that still fits
    if overflow:
        len_b = rng.randrange(room + 1, room + 8)
    else:
        len_b = rng.randrange(0, room + 1)
    decls = (f"char {dst}[{d}];\n"
             f"const char *{src} = {_literal(len_b, rng.randrange(26))};")
    stmts = (f"strcpy({dst}, {_literal(len_a, rng.randrange(26))});\n"
             f"strcat({dst}, {src});\n"
             f'printf("grown %d\\n", (int)strlen({dst}));')
    return decls, stmts, d, len_a + len_b + 1


def _build_memcpy(rng: Random, dst: str, src: str, overflow: bool):
    d = rng.randrange(8, 41)
    n = rng.randrange(d + 1, d + 9) if overflow else rng.randrange(1, d + 1)
    s = n + rng.randrange(0, 4)              # src always holds n bytes
    decls = (f"unsigned char {dst}[{d}];\n"
             f"unsigned char {src}[{s}];\n"
             "int mc_i;")
    stmts = (f"for (mc_i = 0; mc_i < {s}; mc_i++) {{\n"
             f"    {src}[mc_i] = (unsigned char)(mc_i + 1);\n"
             "}\n"
             f"memcpy({dst}, {src}, {n});\n"
             f'printf("moved %u\\n", (unsigned){dst}[0]);')
    return decls, stmts, d, n


def _build_index_loop(rng: Random, dst: str, src: str, overflow: bool):
    d = rng.randrange(8, 41)
    b = rng.randrange(d + 1, d + 9) if overflow else rng.randrange(1, d + 1)
    decls = (f"char {dst}[{d}];\n"
             "int il_i;")
    stmts = (f"for (il_i = 0; il_i < {b}; il_i++) {{\n"
             f"    {dst}[il_i] = (char)('a' + (il_i % 26));\n"
             "}\n"
             f'printf("last %c\\n", {dst}[{b - 1}]);')
    return decls, stmts, d, b


def _build_off_by_one(rng: Random, dst: str, src: str, overflow: bool):
    d = rng.randrange(8, 41)
    if overflow:
        idx = d if rng.randrange(2) else -1  # one past / one below
    else:
        idx = d - 1 if rng.randrange(2) else 0
    decls = (f"char {dst}[{d}];\n"
             f"int edge = {idx};\n"
             "int ob_i;")
    stmts = (f"for (ob_i = 0; ob_i < {d}; ob_i++) {{\n"
             f"    {dst}[ob_i] = '.';\n"
             "}\n"
             f"{dst}[edge] = 'X';\n"
             f'printf("edge %d\\n", edge);')
    return decls, stmts, d, 1


_BUILDERS = {
    "strcpy": _build_strcpy,
    "strcat": _build_strcat,
    "memcpy": _build_memcpy,
    "index_loop": _build_index_loop,
    "off_by_one": _build_off_by_one,
}


def _render(name: str, kind: str, flow: FlowVariant, label: str,
            decls: str, stmts: str) -> str:
    helpers = (flow.helpers + "\n") if flow.helpers else ""
    sink = f"sink_{kind}"
    return (f"/* synthesized mutant {name}: {kind} {label},"
            f" flow {flow.name} */\n"
            + _HEADERS + "\n"
            + helpers
            + f"static void {sink}(void)\n{{\n"
            + _indent(decls) + "\n"
            + _indent(flow.apply(stmts)) + "\n"
            + "}\n\n"
            + "int main(void)\n{\n"
            + f"    {sink}();\n"
            + f'    printf("{name} ok\\n");\n'
            + "    return 0;\n"
            + "}\n")


def _make_mutant(rng: Random, seed: int, index: int) -> SynthMutant:
    kind = rng.choice(MUTANT_KINDS)
    flow = rng.choice(FLOW_VARIANTS)
    overflow = bool(rng.randrange(2))
    dst = rng.choice(_BUF_NAMES)
    src = rng.choice(_SRC_NAMES)
    rng.choice(_FN_NAMES)                    # reserved draw: name flavour
    label = "overflow" if overflow else "safe"
    name = f"synth_{seed}_{index:05d}_{kind}_f{flow.vid:02d}"
    decls, stmts, d, wlen = _BUILDERS[kind](rng, dst, src, overflow)
    return SynthMutant(name=name, kind=kind, flow_vid=flow.vid,
                       flow_name=flow.name, label=label, dst_size=d,
                       write_len=wlen,
                       source=_render(name, kind, flow, label, decls,
                                      stmts))


def oracle_agrees(mutant: SynthMutant) -> bool:
    """Check the mutant's planted label against the bounds-checked VM.

    ``overflow`` mutants must trap with a memory fault; ``safe``
    mutants must run to a clean exit 0.
    """
    import repro

    text = repro.preprocess(mutant.source, filename=mutant.filename)
    result = repro.run_c(text, stdin=b"")
    if mutant.expected_overflow:
        return result.memory_trapped
    return result.ok and result.exit_code == 0


def synthesize(count: int, seed: int, *,
               validate: bool = True) -> list[SynthMutant]:
    """Generate ``count`` mutants, deterministic in ``(count, seed)``.

    With ``validate`` (the default) every mutant is executed in the VM
    and must agree with its planted label; a disagreement means a
    builder bug and raises ``RuntimeError`` after a bounded number of
    rejected attempts rather than silently shipping mislabeled ground
    truth.
    """
    rng = Random(seed)
    mutants: list[SynthMutant] = []
    attempts = 0
    cap = max(32, count * 4)
    while len(mutants) < count:
        if attempts >= cap:
            raise RuntimeError(
                f"synthesizer produced {attempts - len(mutants)} mutants "
                f"the VM oracle disagreed with (seed={seed})")
        mutant = _make_mutant(rng, seed, len(mutants))
        attempts += 1
        if validate and not oracle_agrees(mutant):
            continue
        mutants.append(mutant)
    return mutants


def build_program(count: int, seed: int, *, validate: bool = False,
                  name: str | None = None) -> SourceProgram:
    """Package a synthesized population as a batch-ready program."""
    mutants = synthesize(count, seed, validate=validate)
    return SourceProgram(
        name=name or f"synth-{seed}",
        files={m.filename: m.source for m in mutants})


def manifest(mutants: list[SynthMutant], seed: int, *,
             validated: bool) -> str:
    """Deterministic JSON manifest for a written corpus."""
    entries = [{
        "name": m.name,
        "file": m.filename,
        "kind": m.kind,
        "flow": m.flow_name,
        "flow_vid": m.flow_vid,
        "label": m.label,
        "dst_size": m.dst_size,
        "write_len": m.write_len,
        "sha256": hashlib.sha256(m.source.encode()).hexdigest(),
    } for m in mutants]
    payload = {"seed": seed, "count": len(mutants),
               "validated": validated, "mutants": entries}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_corpus(mutants: list[SynthMutant], out_dir: str, seed: int, *,
                 validated: bool) -> str:
    """Write every mutant plus ``manifest.json``; returns manifest path."""
    os.makedirs(out_dir, exist_ok=True)
    for m in mutants:
        with open(os.path.join(out_dir, m.filename), "w") as fh:
            fh.write(m.source)
    path = os.path.join(out_dir, "manifest.json")
    with open(path, "w") as fh:
        fh.write(manifest(mutants, seed, validated=validated))
    return path
