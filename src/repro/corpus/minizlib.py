"""mini-zlib: a miniature zlib-like compression library.

Real functionality (CRC-32, Adler-32, run-length codec, a gzip-style
wrapper named like zlib's minigzip) plus the planted SLR/STR site
population for the RQ2 evaluation.  The test driver exercises the codec
round-trip and every planted site, printing deterministic output — the
"make test" analogue the paper runs before and after transformation.
"""

from __future__ import annotations

from ..core.batch import SourceProgram
from .sitegen import SiteEmitter

_HEADER = """\
#ifndef MINIZLIB_H
#define MINIZLIB_H
#include <stddef.h>

unsigned long mz_crc32(unsigned long crc, const unsigned char *data,
                       size_t n);
unsigned long mz_adler32(unsigned long adler, const unsigned char *data,
                         size_t n);
int mz_rle_compress(const unsigned char *in, int in_len,
                    unsigned char *out, int out_cap);
int mz_rle_uncompress(const unsigned char *in, int in_len,
                      unsigned char *out, int out_cap);
int mz_gzip_name(const char *base, char *out_name);
void run_sites_zlib(void);
#endif
"""

_CRC32_C = """\
#include "minizlib.h"

/* CRC-32 (IEEE 802.3), bitwise variant: small and table-free. */
unsigned long mz_crc32(unsigned long crc, const unsigned char *data,
                       size_t n)
{
    size_t i;
    int k;
    crc = crc ^ 0xffffffffUL;
    for (i = 0; i < n; i++) {
        crc = crc ^ data[i];
        for (k = 0; k < 8; k++) {
            if (crc & 1UL) {
                crc = (crc >> 1) ^ 0xedb88320UL;
            } else {
                crc = crc >> 1;
            }
        }
    }
    return crc ^ 0xffffffffUL;
}

unsigned long mz_adler32(unsigned long adler, const unsigned char *data,
                         size_t n)
{
    unsigned long s1 = adler & 0xffff;
    unsigned long s2 = (adler >> 16) & 0xffff;
    size_t i;
    for (i = 0; i < n; i++) {
        s1 = (s1 + data[i]) % 65521UL;
        s2 = (s2 + s1) % 65521UL;
    }
    return (s2 << 16) + s1;
}
"""

_RLE_C = """\
#include "minizlib.h"

/* Byte-oriented run-length codec standing in for deflate: run packets
 * are (count, byte) with count >= 3, literal packets are (0, count,
 * bytes...).  Returns the encoded length or -1 when out of room. */

static int emit_literals(const unsigned char *start, int count,
                         unsigned char *out, int pos, int cap)
{
    int i;
    if (pos + 2 + count > cap) {
        return -1;
    }
    out[pos] = 0;
    out[pos + 1] = (unsigned char)count;
    for (i = 0; i < count; i++) {
        out[pos + 2 + i] = start[i];
    }
    return pos + 2 + count;
}

int mz_rle_compress(const unsigned char *in, int in_len,
                    unsigned char *out, int out_cap)
{
    int pos = 0;
    int i = 0;
    int lit_start = 0;
    int lit_count = 0;
    while (i < in_len) {
        int run = 1;
        while (i + run < in_len && in[i + run] == in[i] && run < 255) {
            run = run + 1;
        }
        if (run >= 3) {
            if (lit_count > 0) {
                pos = emit_literals(in + lit_start, lit_count, out, pos,
                                    out_cap);
                if (pos < 0) {
                    return -1;
                }
                lit_count = 0;
            }
            if (pos + 2 > out_cap) {
                return -1;
            }
            out[pos] = (unsigned char)run;
            out[pos + 1] = in[i];
            pos = pos + 2;
            i = i + run;
            lit_start = i;
        } else {
            if (lit_count == 0) {
                lit_start = i;
            }
            lit_count = lit_count + run;
            i = i + run;
            if (lit_count >= 200) {
                pos = emit_literals(in + lit_start, lit_count, out, pos,
                                    out_cap);
                if (pos < 0) {
                    return -1;
                }
                lit_count = 0;
                lit_start = i;
            }
        }
    }
    if (lit_count > 0) {
        pos = emit_literals(in + lit_start, lit_count, out, pos, out_cap);
    }
    return pos;
}

int mz_rle_uncompress(const unsigned char *in, int in_len,
                      unsigned char *out, int out_cap)
{
    int pos = 0;
    int i = 0;
    while (i < in_len) {
        int tag = in[i];
        if (tag == 0) {
            int count = in[i + 1];
            int j;
            if (pos + count > out_cap) {
                return -1;
            }
            for (j = 0; j < count; j++) {
                out[pos + j] = in[i + 2 + j];
            }
            pos = pos + count;
            i = i + 2 + count;
        } else {
            int j;
            if (pos + tag > out_cap) {
                return -1;
            }
            for (j = 0; j < tag; j++) {
                out[pos + j] = in[i + 1];
            }
            pos = pos + tag;
            i = i + 2;
        }
    }
    return pos;
}
"""

# minigzip.c analogue: builds <name>.gz output names — the paper's own
# zlib example (infile = buf; strcat(infile, ".gz")) lives here and is
# part of the planted strcat population via the sites file.
_GZNAME_C = """\
#include <string.h>
#include "minizlib.h"

int mz_gzip_name(const char *base, char *out_name)
{
    int i = 0;
    while (base[i] != '\\0' && i < 200) {
        out_name[i] = base[i];
        i = i + 1;
    }
    out_name[i] = '.';
    out_name[i + 1] = 'g';
    out_name[i + 2] = 'z';
    out_name[i + 3] = '\\0';
    return i + 3;
}
"""

_TEST_C = """\
#include <stdio.h>
#include <string.h>
#include "minizlib.h"

static void test_crc(void)
{
    unsigned char payload[32];
    int i;
    for (i = 0; i < 32; i++) {
        payload[i] = (unsigned char)(i * 7 + 1);
    }
    printf("crc32=%lx adler=%lx\\n",
           mz_crc32(0, payload, 32), mz_adler32(1, payload, 32));
}

static void test_roundtrip(void)
{
    unsigned char raw[96];
    unsigned char packed[256];
    unsigned char unpacked[96];
    int i;
    int packed_len;
    int out_len;
    int same;
    for (i = 0; i < 96; i++) {
        raw[i] = (unsigned char)(i < 40 ? 7 : (i % 5) + 60);
    }
    packed_len = mz_rle_compress(raw, 96, packed, 256);
    out_len = mz_rle_uncompress(packed, packed_len, unpacked, 96);
    same = 1;
    for (i = 0; i < 96; i++) {
        if (unpacked[i] != raw[i]) {
            same = 0;
        }
    }
    printf("rle packed=%d out=%d same=%d\\n", packed_len, out_len, same);
}

static void test_gzip_name(void)
{
    char out_name[64];
    int n = mz_gzip_name("archive", out_name);
    printf("gzname=%s len=%d\\n", out_name, n);
}

int main(void)
{
    printf("== mini-zlib test suite ==\\n");
    test_crc();
    test_roundtrip();
    test_gzip_name();
    run_sites_zlib();
    printf("ALL TESTS PASSED\\n");
    return 0;
}
"""

#: Planted population (calibrated so corpus-wide totals land on the
#: paper's 317 SLR sites / 296 STR candidates — see eval tables 5/6).
SITE_PLAN = {
    "strcpy": (4, 2),
    "strcat": (2, 0),
    "sprintf": (8, 0),
    "memcpy": (12, 8),
}
STR_OK_BUFFERS = 12
STR_FAIL_BUFFERS = 0


def _sites_file() -> str:
    emitter = SiteEmitter("zlib")
    emitter.emit(SITE_PLAN, 0, 0)
    _emit_str_buffers(emitter, STR_OK_BUFFERS, STR_FAIL_BUFFERS)
    return (
        "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"
        "#include <stdarg.h>\n#include \"minizlib.h\"\n\n"
        + emitter.render_functions()
        + "\n\nvoid run_sites_zlib(void)\n{\n"
        + emitter.render_calls()
        + "\n}\n")


def _emit_str_buffers(emitter: SiteEmitter, ok: int, fail: int) -> None:
    emitter.str_ok_buffers(ok)
    for _ in range(fail):
        emitter.str_fail_buffer()


def build() -> SourceProgram:
    return SourceProgram(
        name="zlib",
        files={
            "crc32.c": _CRC32_C,
            "rle.c": _RLE_C,
            "minigzip.c": _GZNAME_C,
            "sites_zlib.c": _sites_file(),
            "test_zlib.c": _TEST_C,
        },
        headers={"minizlib.h": _HEADER},
        main_file="test_zlib.c",
    )
