"""CLI: ``python -m repro.corpus dump`` — write the four corpus programs
to disk as compilable source trees.

Each program gets its .c files, its private header, a copy of the
stralloc reference implementation (so STR-transformed output can be
compiled with a real C compiler), and a Makefile whose ``make test``
builds and runs the test driver.
"""

from __future__ import annotations

import argparse
import pathlib

from ..core.stralloc import STRALLOC_C_SOURCE, STRALLOC_DECLARATIONS
from . import build_all

_MAKEFILE = """\
CC ?= cc
CFLAGS ?= -O1 -Wall
SRCS := $(wildcard *.c)
BIN := {name}_test

$(BIN): $(SRCS)
\t$(CC) $(CFLAGS) -o $@ $(SRCS)

.PHONY: test clean
test: $(BIN)
\t./$(BIN)

clean:
\trm -f $(BIN)
"""


def dump(out_dir: pathlib.Path) -> list[str]:
    written: list[str] = []
    for name, program in build_all().items():
        program_dir = out_dir / name
        program_dir.mkdir(parents=True, exist_ok=True)
        for filename, text in program.files.items():
            (program_dir / filename).write_text(text, encoding="utf-8")
            written.append(f"{name}/{filename}")
        for filename, text in program.headers.items():
            (program_dir / filename).write_text(text, encoding="utf-8")
            written.append(f"{name}/{filename}")
        (program_dir / "Makefile").write_text(
            _MAKEFILE.format(name=name), encoding="utf-8")
        written.append(f"{name}/Makefile")
    # Shared stralloc support, for compiling STR-transformed output.
    support = out_dir / "stralloc"
    support.mkdir(parents=True, exist_ok=True)
    (support / "stralloc.h").write_text(
        "#ifndef STRALLOC_H\n#define STRALLOC_H\n"
        + STRALLOC_DECLARATIONS + "#endif\n", encoding="utf-8")
    (support / "stralloc.c").write_text(STRALLOC_C_SOURCE,
                                        encoding="utf-8")
    written.extend(["stralloc/stralloc.h", "stralloc/stralloc.c"])
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.corpus",
        description="Dump the corpus programs as compilable source trees")
    sub = parser.add_subparsers(dest="command", required=True)
    dump_cmd = sub.add_parser("dump")
    dump_cmd.add_argument("--out", required=True)
    args = parser.parse_args(argv)
    written = dump(pathlib.Path(args.out))
    print(f"wrote {len(written)} files to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
