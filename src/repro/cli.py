"""Command-line interface: ``python -m repro``.

Subcommands mirror how the paper's tool is used:

* ``fix FILE``       — apply SLR and/or STR to a C file, print or write
  the transformed source, and report per-site outcomes;
* ``run FILE``       — execute a C file in the bounds-checked VM;
* ``analyze FILE``   — print analysis facts (points-to, aliases, buffer
  lengths at unsafe call sites).
"""

from __future__ import annotations

import argparse
import sys

from . import apply_slr, apply_str, preprocess, run_c


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_fix(args: argparse.Namespace) -> int:
    source = _read(args.file)
    text = preprocess(source, args.file)
    outcomes = []
    if not args.no_slr:
        result = apply_slr(text, args.file, profile=args.profile)
        outcomes.extend(result.outcomes)
        text = result.new_text
    if not args.no_str:
        result = apply_str(text, args.file)
        outcomes.extend(result.outcomes)
        text = result.new_text

    for outcome in outcomes:
        marker = "FIXED" if outcome.transformed else "SKIP "
        reason = f" ({outcome.reason})" if outcome.reason else ""
        print(f"[{marker}] {outcome.transformation} "
              f"{outcome.function}:{outcome.line} "
              f"{outcome.target}{reason}", file=sys.stderr)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    transformed = sum(1 for o in outcomes if o.transformed)
    print(f"{transformed}/{len(outcomes)} sites transformed",
          file=sys.stderr)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = _read(args.file)
    text = preprocess(source, args.file)
    stdin = args.stdin.encode() if args.stdin else b""
    result = run_c(text, stdin=stdin)
    sys.stdout.write(result.stdout_text)
    if result.fault:
        print(f"FAULT: {result.fault_detail}", file=sys.stderr)
        return 1
    return result.exit_code or 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze
    from .cfront import astnodes as ast
    from .cfront.parser import parse_translation_unit
    from .core.bufferlen import BufferLengthAnalyzer, LengthFailure
    from .core.slr import UNSAFE_FUNCTIONS

    source = _read(args.file)
    text = preprocess(source, args.file)
    unit = parse_translation_unit(text, args.file)
    pa = analyze(unit)
    lengths = BufferLengthAnalyzer(pa, text)

    print("== functions ==")
    for fn in unit.functions():
        locals_ = pa.symbols.locals_of.get(fn.name, [])
        print(f"  {fn.name}: {len(locals_)} locals, "
              f"calls {sorted(pa.callgraph.callees(fn.name))}")

    print("\n== pointer aliases ==")
    for group in pa.aliases.alias_sets():
        print("  {" + ", ".join(sorted(s.name for s in group)) + "}")

    print("\n== unsafe call sites ==")
    for node in unit.walk():
        if isinstance(node, ast.Call) and \
                node.callee_name in UNSAFE_FUNCTIONS and node.args:
            result = lengths.get_buffer_length(node.args[0])
            dest = node.args[0].source_text(text)
            if isinstance(result, LengthFailure):
                print(f"  {node.callee_name}({dest}, ...): "
                      f"UNSIZABLE ({result.reason})")
            else:
                print(f"  {node.callee_name}({dest}, ...): "
                      f"size = {result.render()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatically fix C buffer overflows using program "
                    "transformations (DSN 2014 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    fix = sub.add_parser("fix", help="apply SLR/STR to a C file")
    fix.add_argument("file")
    fix.add_argument("-o", "--output", help="write result here")
    fix.add_argument("--no-slr", action="store_true")
    fix.add_argument("--no-str", action="store_true")
    fix.add_argument("--profile", choices=("glib", "c11"),
                     default="glib",
                     help="safe-function family for SLR (Table I)")
    fix.set_defaults(func=cmd_fix)

    run = sub.add_parser("run", help="run a C file in the checked VM")
    run.add_argument("file")
    run.add_argument("--stdin", default="", help="text fed to stdin")
    run.set_defaults(func=cmd_run)

    analyze_cmd = sub.add_parser("analyze",
                                 help="print analysis facts for a C file")
    analyze_cmd.add_argument("file")
    analyze_cmd.set_defaults(func=cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
