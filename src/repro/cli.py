"""Command-line interface: ``python -m repro``.

Subcommands mirror how the paper's tool is used:

* ``fix FILE``       — apply SLR and/or STR to a C file, print or write
  the transformed source, and report per-site outcomes;
* ``batch DIR``      — apply SLR/STR to every .c file in a directory
  through the parallel batch driver (``--jobs N``), reporting per-file
  wall time and cache counters; ``--validate`` adds the differential
  oracle;
* ``validate PATH``  — transform a .c file (or directory) and run the
  differential oracle: original vs. transformed behaviour on benign,
  overflow, and seeded fuzz inputs, with per-divergence verdicts;
* ``backends``       — list the registered fix backends
  (``batch --backends a,b,c`` arbitrates them per file, shipping each
  file's oracle-best candidate; ``REPRO_BACKENDS`` sets the default);
* ``run FILE``       — execute a C file in the bounds-checked VM;
* ``analyze FILE``   — print analysis facts (points-to, aliases, buffer
  lengths at unsafe call sites);
* ``cache ACTION``   — manage the persistent artifact store
  (``stats`` / ``clear`` / ``gc``; ``stats --json`` dumps per-family
  and per-shard counters machine-readably);
* ``runs ACTION``    — inspect the crash-safe run journals every
  ``batch`` invocation writes (``list`` / ``show`` / ``gc``); ``batch
  --resume <run-id|latest>`` replays a crashed or interrupted run's
  completed files and re-dispatches only unfinished work;
* ``synth``          — generate a synthetic ground-truth corpus of
  planted overflow/safe files, VM-validated and deterministic by seed.

``batch`` and ``validate`` accept ``--no-disk-cache`` (this run skips
the persistent store) and ``--profile`` (render the per-stage timing
breakdown; ``REPRO_PROFILE=1`` does the same).

``batch`` is fault-isolated: a file that fails any stage is recorded
with a structured diagnostic and its siblings continue.  ``--strict``
turns any contained failure into a non-zero exit,
``--diagnostics-json PATH`` dumps the diagnostics machine-readably, and
``--task-timeout`` / ``--task-retries`` tune the fork pool's worker
supervision.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import apply_slr, apply_str, preprocess, run_c


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_fix(args: argparse.Namespace) -> int:
    source = _read(args.file)
    text = preprocess(source, args.file)
    outcomes = []
    if not args.no_slr:
        result = apply_slr(text, args.file, profile=args.profile)
        outcomes.extend(result.outcomes)
        text = result.new_text
    if not args.no_str:
        result = apply_str(text, args.file)
        outcomes.extend(result.outcomes)
        text = result.new_text

    for outcome in outcomes:
        marker = "FIXED" if outcome.transformed else "SKIP "
        reason = f" ({outcome.reason})" if outcome.reason else ""
        print(f"[{marker}] {outcome.transformation} "
              f"{outcome.function}:{outcome.line} "
              f"{outcome.target}{reason}", file=sys.stderr)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    transformed = sum(1 for o in outcomes if o.transformed)
    print(f"{transformed}/{len(outcomes)} sites transformed",
          file=sys.stderr)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = _read(args.file)
    text = preprocess(source, args.file)
    stdin = args.stdin.encode() if args.stdin else b""
    result = run_c(text, stdin=stdin)
    sys.stdout.write(result.stdout_text)
    if result.fault:
        print(f"FAULT: {result.fault_detail}", file=sys.stderr)
        return 1
    return result.exit_code or 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .cfront import astnodes as ast
    from .core.bufferlen import BufferLengthAnalyzer, LengthFailure
    from .core.session import get_session
    from .core.slr import UNSAFE_FUNCTIONS

    source = _read(args.file)
    session = get_session()
    text = session.preprocess(source, args.file).text
    parsed = session.parse(text, args.file)
    unit, pa = parsed.unit, parsed.analysis
    lengths = BufferLengthAnalyzer(pa, text)

    print("== functions ==")
    for fn in unit.functions():
        locals_ = pa.symbols.locals_of.get(fn.name, [])
        print(f"  {fn.name}: {len(locals_)} locals, "
              f"calls {sorted(pa.callgraph.callees(fn.name))}")

    print("\n== pointer aliases ==")
    for group in pa.aliases.alias_sets():
        print("  {" + ", ".join(sorted(s.name for s in group)) + "}")

    print("\n== unsafe call sites ==")
    for node in unit.walk():
        if isinstance(node, ast.Call) and \
                node.callee_name in UNSAFE_FUNCTIONS and node.args:
            result = lengths.get_buffer_length(node.args[0])
            dest = node.args[0].source_text(text)
            if isinstance(result, LengthFailure):
                print(f"  {node.callee_name}({dest}, ...): "
                      f"UNSIZABLE ({result.reason})")
            else:
                print(f"  {node.callee_name}({dest}, ...): "
                      f"size = {result.render()}")
    return 0


def _load_program(path: str):
    """Build a SourceProgram from a directory of .c/.h files or a single
    .c file; returns (program, error-message)."""
    import os

    from .core.batch import SourceProgram

    if os.path.isfile(path):
        name = os.path.basename(path)
        return SourceProgram(name, {name: _read(path)}, {}), None
    try:
        entries = sorted(os.listdir(path))
    except OSError as exc:
        return None, f"cannot read {path}: {exc.strerror}"
    files: dict[str, str] = {}
    headers: dict[str, str] = {}
    for entry in entries:
        full = os.path.join(path, entry)
        if not os.path.isfile(full):
            continue
        if entry.endswith(".c"):
            files[entry] = _read(full)
        elif entry.endswith(".h"):
            headers[entry] = _read(full)
    if not files:
        return None, f"no .c files in {path}"
    program = SourceProgram(
        os.path.basename(os.path.abspath(path)) or "program",
        files, headers)
    return program, None


def _apply_disk_cache_flag(args: argparse.Namespace) -> None:
    """``--no-disk-cache`` disables the persistent store for this run
    (and any fork-pool workers, which inherit the environment)."""
    import os

    if getattr(args, "no_disk_cache", False):
        os.environ["REPRO_DISK_CACHE"] = "0"


def _apply_supervision_flags(args: argparse.Namespace) -> None:
    """``--task-timeout`` / ``--task-retries`` set the supervision env
    knobs so fork-pool workers (which inherit the environment) and the
    executor defaults agree."""
    import os

    if getattr(args, "task_timeout", None) is not None:
        os.environ["REPRO_TASK_TIMEOUT"] = str(args.task_timeout)
    if getattr(args, "task_retries", None) is not None:
        os.environ["REPRO_TASK_RETRIES"] = str(args.task_retries)


def _make_journal(args: argparse.Namespace, program):
    """Build (or reopen, under ``--resume``) the run journal for a batch
    invocation; returns ``(journal, error message)``.  ``--no-run-log``
    (or ``REPRO_RUN_LOG=0``) runs unjournaled."""
    import os

    from .core.runlog import (
        RunJournal, RunNotFound, resolve_run_id, run_log_enabled,
    )

    if getattr(args, "no_run_log", False):
        os.environ["REPRO_RUN_LOG"] = "0"
    if not run_log_enabled():
        if getattr(args, "resume", None):
            return None, ("--resume requires run journaling "
                          "(drop --no-run-log / REPRO_RUN_LOG=0)")
        return None, None
    try:
        if getattr(args, "resume", None):
            journal = RunJournal(resolve_run_id(args.resume))
            journal.load()
        else:
            journal = RunJournal(getattr(args, "run_id", None))
    except RunNotFound as exc:
        return None, str(exc)
    journal.begin(program, {
        "run_slr": not args.no_slr, "run_str": not args.no_str,
        "profile": args.slr_profile, "validate": args.validate,
        "backends": args.backends, "arbitration": args.arbitration,
    })
    return journal, None


def cmd_batch(args: argparse.Namespace) -> int:
    import json
    import os

    from .cfront.source import SourceError
    from .core.batch import apply_batch
    from .core.profile import profiling_enabled
    from .core.report import (
        diagnostics_payload, render_backend_scoreboard,
        render_batch_stats, render_cache_stats, render_diagnostics,
        render_profile, render_validation,
    )

    _apply_disk_cache_flag(args)
    _apply_supervision_flags(args)
    program, error = _load_program(args.directory)
    if program is None:
        print(error, file=sys.stderr)
        return 2
    journal, error = _make_journal(args, program)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        batch = apply_batch(program, run_slr=not args.no_slr,
                            run_str=not args.no_str,
                            profile=args.slr_profile,
                            jobs=args.jobs, validate=args.validate,
                            backends=args.backends,
                            arbitration=args.arbitration,
                            journal=journal)
    except (SourceError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Every completed file is already journaled (the WAL is flushed
        # per event), so the run picks up where it stopped.
        if journal is not None:
            journal.close()
            print(f"\ninterrupted — resume with: repro batch "
                  f"{args.directory} --resume {journal.run_id}",
                  file=sys.stderr)
        else:
            print("\ninterrupted (unjournaled run; nothing to resume)",
                  file=sys.stderr)
        return 130

    for report in batch.reports:
        if report.arbitration is not None:
            # Arbitration mode: the per-site story is the winning
            # candidate's; losing candidates live in the scoreboard.
            winning = report.arbitration.winning_candidate
            results = [winning.result] \
                if winning is not None and winning.result else []
        else:
            results = [r for r in (report.slr, report.str_) if r]
        for result in results:
            for outcome in result.outcomes:
                marker = "FIXED" if outcome.transformed else "SKIP "
                reason = f" ({outcome.reason})" if outcome.reason else ""
                print(f"[{marker}] {outcome.transformation} "
                      f"{report.filename}:{outcome.line} "
                      f"{outcome.function} {outcome.target}{reason}",
                      file=sys.stderr)

    if args.output:
        os.makedirs(args.output, exist_ok=True)
        for report in batch.reports:
            out_path = os.path.join(args.output, report.filename)
            with open(out_path, "w", encoding="utf-8") as handle:
                handle.write(report.final_text)
        print(f"wrote {len(batch.reports)} files to {args.output}",
              file=sys.stderr)

    print(render_batch_stats(batch))
    arbitrated = bool(batch.arbitrations())
    if arbitrated:
        print()
        print(render_backend_scoreboard(batch))
    if batch.diagnostics():
        print()
        print(render_diagnostics(batch))
    if args.validate:
        print()
        print(render_validation(batch))
    if args.profile or profiling_enabled():
        print()
        print(render_profile(batch))
    if args.stats:
        print()
        print(render_cache_stats())
    if args.diagnostics_json:
        with open(args.diagnostics_json, "w", encoding="utf-8") as handle:
            json.dump(diagnostics_payload(batch), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote diagnostics to {args.diagnostics_json}",
              file=sys.stderr)
    counts = batch.status_counts()
    quarantine_note = f"/{counts['quarantined']}" \
        if counts.get("quarantined") else ""
    if journal is not None:
        stats = batch.stats
        print(f"run {journal.run_id}: journaled to {journal.run_dir} "
              f"({stats.replayed} replayed, {stats.quarantined} "
              f"quarantined); resume with --resume {journal.run_id}",
              file=sys.stderr)
    if arbitrated:
        winners = batch.winners()
        fixed = sum(1 for winner in winners.values() if winner)
        site_note = ""
        if batch.site_winner_totals() or any(
                a.mode == "site" for a in batch.arbitrations()):
            sites_won = sum(batch.site_winner_totals().values())
            site_note = (f", {batch.composites_shipped} composite(s) "
                         f"over {sites_won} site(s)")
        print(f"arbitration: {fixed}/{len(winners)} file(s) fixed, "
              f"{batch.backends_attempted} candidate(s), "
              f"{batch.backends_rejected} rejected{site_note}; "
              f"all files parse: "
              f"{'yes' if batch.all_parse else 'NO'}; "
              f"files ok/degraded/failed"
              f"{'/quarantined' if quarantine_note else ''}: "
              f"{counts['ok']}/{counts['degraded']}/"
              f"{counts['failed']}{quarantine_note}",
              file=sys.stderr)
    else:
        slr_done = batch.transformed("SLR")
        slr_all = batch.candidates("SLR")
        str_done = batch.transformed("STR")
        str_all = batch.candidates("STR")
        print(f"SLR {slr_done}/{slr_all} sites, STR {str_done}/"
              f"{str_all} buffers; all files parse: "
              f"{'yes' if batch.all_parse else 'NO'}; "
              f"files ok/degraded/failed"
              f"{'/quarantined' if quarantine_note else ''}: "
              f"{counts['ok']}/{counts['degraded']}/"
              f"{counts['failed']}{quarantine_note}",
              file=sys.stderr)
    # Under arbitration the oracle always judged the shipped fixes, so
    # the semantics gate applies whether or not --validate was given.
    ok = batch.all_parse and (not (arbitrated or args.validate)
                              or batch.semantics_preserved)
    if args.strict:
        ok = ok and batch.fully_succeeded
    return 0 if ok else 1


def cmd_validate(args: argparse.Namespace) -> int:
    from .cfront.source import SourceError
    from .core.batch import apply_batch
    from .core.report import render_validation

    _apply_disk_cache_flag(args)
    program, error = _load_program(args.path)
    if program is None:
        print(error, file=sys.stderr)
        return 2
    try:
        batch = apply_batch(program, run_slr=not args.no_slr,
                            run_str=not args.no_str,
                            profile=args.slr_profile,
                            jobs=args.jobs, validate=True,
                            fuzz_seed=args.seed,
                            backends=args.backends,
                            arbitration=args.arbitration)
    except (SourceError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    for report in batch.reports:
        if not report.parses:
            print(f"[BROKEN] {report.filename}: transformed text does "
                  f"not parse", file=sys.stderr)
        if report.validation is None:
            continue
        for verdict in report.validation.divergences():
            print(f"[{verdict.verdict}] {report.filename} "
                  f"{verdict.input.name}({verdict.input.kind}): "
                  f"{verdict.detail}", file=sys.stderr)

    print(render_validation(batch))
    if batch.arbitrations():
        from .core.report import render_backend_scoreboard
        print()
        print(render_backend_scoreboard(batch))
    return 0 if batch.all_parse and batch.semantics_preserved else 1


def cmd_backends(args: argparse.Namespace) -> int:
    """List the registered fix backends and the defaults in effect."""
    from .core.backends import (
        DEFAULT_BACKENDS, all_backends, backends_from_env,
    )

    env_default = backends_from_env()
    active = env_default if env_default is not None else None
    for backend in all_backends():
        marks = []
        if backend.id in DEFAULT_BACKENDS:
            marks.append("legacy-chain")
        if active is not None and backend.id in active:
            marks.append("REPRO_BACKENDS")
        suffix = f"  [{', '.join(marks)}]" if marks else ""
        print(f"{backend.id:<10} {backend.title}{suffix}")
        if args.verbose:
            print(f"{'':10} {backend.description}")
            if backend.config_key():
                print(f"{'':10} config: {backend.config_key()}")
    if active is not None:
        print(f"\nREPRO_BACKENDS={','.join(active)} — batch runs "
              f"arbitrate these by default")
    else:
        print("\nno REPRO_BACKENDS set — batch runs the legacy "
              "SLR→STR chain unless --backends is given")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    import os

    from .core.watch import WatchLoop

    if not os.path.exists(args.path):
        print(f"error: {args.path} does not exist", file=sys.stderr)
        return 2
    loop = WatchLoop(args.path, profile=args.profile,
                     validate=not args.no_validate, fuzz_seed=args.seed,
                     json_output=args.json)
    if args.once:
        loop.scan_once(force=True)
        return 0
    # Banner on stderr so a piped --json stream stays pure JSONL.
    print(f"[watch] watching {args.path} "
          f"(poll {loop.interval_s}s, debounce {loop.debounce_s}s, "
          f"Ctrl-C to stop)", file=sys.stderr, flush=True)
    return loop.run()


def cmd_synth(args: argparse.Namespace) -> int:
    """Generate a synthetic ground-truth corpus (``repro synth``)."""
    from .corpus.synth import synthesize, write_corpus

    validate = not args.no_validate
    try:
        mutants = synthesize(args.count, args.seed, validate=validate)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    path = write_corpus(mutants, args.out, args.seed,
                        validated=validate)
    overflow = sum(1 for m in mutants if m.expected_overflow)
    print(f"wrote {len(mutants)} file(s) to {args.out} "
          f"({overflow} overflow, {len(mutants) - overflow} safe"
          f"{', VM-validated' if validate else ''}); "
          f"manifest: {path}", file=sys.stderr)
    return 0


def _cache_stats_payload(store) -> dict:
    """Machine-readable snapshot of the persistent store: per-family
    usage and lifetime counters, per-shard breakdowns, and the
    write-contention summary."""
    from .core.store import SCHEMA_VERSION

    return {
        "root": store.root,
        "schema_version": SCHEMA_VERSION,
        "fingerprint": store.fingerprint,
        "shards": store.shards,
        "usage": store.usage(),
        "shard_usage": store.shard_usage(),
        "counters": store.persisted_counters(),
        "shard_counters": store.persisted_shard_counters(),
        "contention": store.contention_summary(
            store.persisted_shard_counters()),
        "stale_versions": store.stale_versions(),
    }


def cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .cfront.cache import stats_by_family
    from .core.store import SCHEMA_VERSION, get_store

    store = get_store()
    if args.action == "stats" and getattr(args, "json", False):
        json.dump(_cache_stats_payload(store), sys.stdout, indent=2,
                  sort_keys=True)
        sys.stdout.write("\n")
        return 0
    if args.action == "clear":
        files, nbytes = store.clear()
        print(f"cleared {files} file(s), {nbytes} bytes from "
              f"{store.root}")
        return 0
    if args.action == "gc":
        summary = store.gc(max_age_s=args.max_age_days * 86400.0
                           if args.max_age_days is not None else None)
        print(f"gc: removed {summary['removed_files']} file(s), "
              f"freed {summary['freed_bytes']} bytes, "
              f"dropped {summary['removed_versions']} stale version "
              f"dir(s) under {store.root}")
        if args.max_age_days is not None:
            # Age-bounded gc also prunes run journals past the cutoff
            # (run directories are never touched without an explicit
            # age — they are the audit trail).
            from .core.runlog import gc_runs, runs_root
            runs = gc_runs(max_age_days=args.max_age_days)
            if runs["removed_runs"]:
                print(f"gc: removed {runs['removed_runs']} run "
                      f"journal(s), freed {runs['freed_bytes']} bytes "
                      f"under {runs_root()}")
        return 0

    # stats: on-disk usage plus lifetime hit/miss/bytes counters.
    print(f"store: {store.root}")
    print(f"version: schema v{SCHEMA_VERSION}, "
          f"fingerprint {store.fingerprint}")
    usage = store.usage()
    counters = store.persisted_counters()
    families = sorted(set(usage) | set(counters))
    if not families:
        print("(store is empty)")
        return 0
    rows = []
    total_entries = total_bytes = 0
    for family in families:
        use = usage.get(family, {"entries": 0, "bytes": 0})
        counter = counters.get(family, {})
        total_entries += use["entries"]
        total_bytes += use["bytes"]
        rows.append(f"  {family:<11} {use['entries']:>7} entries  "
                    f"{use['bytes']:>10} bytes  "
                    f"hits={counter.get('hits', 0)} "
                    f"misses={counter.get('misses', 0)} "
                    f"read={counter.get('bytes_read', 0)} "
                    f"written={counter.get('bytes_written', 0)}")
    print("\n".join(rows))
    print(f"  {'(total)':<11} {total_entries:>7} entries  "
          f"{total_bytes:>10} bytes")
    process = stats_by_family()
    if any(s.lookups for s in process.values()):
        print("this process (memory LRU + disk layer, by family):")
        for family, s in sorted(process.items()):
            if not s.lookups:
                continue
            print(f"  {family:<11} hits={s.hits} misses={s.misses} "
                  f"disk_hits={s.disk_hits} disk_misses={s.disk_misses} "
                  f"hit_rate={100.0 * s.hit_rate:.1f}%")
    stale = store.stale_versions()
    if stale:
        print(f"  {len(stale)} stale version dir(s) — run "
              f"'repro cache gc' to reclaim")
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    """Inspect and prune the ARVO-style run directories
    (``repro runs list`` / ``show`` / ``gc``)."""
    from .core.runlog import (
        RunJournal, RunNotFound, gc_runs, list_runs, resolve_run_id,
        runs_root,
    )

    if args.action == "list":
        runs = list_runs()
        if not runs:
            print(f"no runs under {runs_root()}")
            return 0
        print(f"{'run id':<24} {'created':<21} {'program':<18} "
              f"{'files':>5} {'done':>5} {'fail':>4} {'quar':>4}")
        for run in runs:
            print(f"{run['run_id']:<24} {run['created']:<21} "
                  f"{run['program'][:18]:<18} {run['files']:>5} "
                  f"{run['completed']:>5} {run['failed']:>4} "
                  f"{run['quarantined']:>4}")
        return 0

    if args.action == "gc":
        if args.max_age_days is None and args.keep is None:
            print("error: runs gc needs --max-age-days and/or --keep "
                  "(run directories are the audit trail; nothing is "
                  "pruned by default)", file=sys.stderr)
            return 2
        summary = gc_runs(max_age_days=args.max_age_days,
                          keep=args.keep)
        print(f"runs gc: removed {summary['removed_runs']} run(s), "
              f"freed {summary['freed_bytes']} bytes under "
              f"{runs_root()}")
        return 0

    # show: replay the crash-report → fix → verdict chain per file.
    try:
        journal = RunJournal(resolve_run_id(args.run_id or "latest"))
        journal.load()
    except RunNotFound as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifest = journal.manifest
    print(f"run {journal.run_id}  created {manifest.get('created', '?')}"
          f"  program {manifest.get('program', '?')}  "
          f"fingerprint {manifest.get('fingerprint', '?')}")
    settings = manifest.get("settings", {})
    if settings:
        print("settings: " + " ".join(f"{k}={v}" for k, v
                                      in sorted(settings.items())))
    names = [args.file] if args.file else sorted(journal.completed)
    if not names:
        print("(no journaled per-file events)")
        return 0
    shown = 0
    for name in names:
        event = journal.completed.get(name)
        audit = journal.read_audit(name)
        if event is None and audit is None:
            print(f"{name}: no journaled outcome", file=sys.stderr)
            continue
        shown += 1
        status = audit.get("status") if audit else (event and event[0])
        print(f"\n{name}: {status}")
        if audit is None:
            continue
        for diag in audit.get("diagnostics") or []:
            print(f"  crash report: [{diag.get('stage')}] "
                  f"{diag.get('kind')}: {diag.get('message')}")
        winner = audit.get("winner")
        if winner:
            print(f"  fix: backend {winner} won the arbitration")
        elif audit.get("diff"):
            print("  fix: SLR/STR chain edited the file")
        verdicts = audit.get("verdicts")
        if verdicts:
            print("  verdicts: " + " ".join(
                f"{k}={v}" for k, v in sorted(verdicts.items())))
        for div in audit.get("divergences") or []:
            print(f"  divergence: {div.get('input')}"
                  f"({div.get('kind')}): {div.get('verdict')} — "
                  f"{div.get('detail')}")
        diff = audit.get("diff")
        if diff and (args.file or args.diff):
            print("  diff:")
            for line in diff.splitlines():
                print(f"    {line}")
        elif diff:
            print(f"  diff: {len(diff.splitlines())} line(s) "
                  f"(show with --diff or --file {name})")
    return 0 if shown else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatically fix C buffer overflows using program "
                    "transformations (DSN 2014 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    fix = sub.add_parser("fix", help="apply SLR/STR to a C file")
    fix.add_argument("file")
    fix.add_argument("-o", "--output", help="write result here")
    fix.add_argument("--no-slr", action="store_true")
    fix.add_argument("--no-str", action="store_true")
    fix.add_argument("--profile", choices=("glib", "c11"),
                     default="glib",
                     help="safe-function family for SLR (Table I)")
    fix.set_defaults(func=cmd_fix)

    batch = sub.add_parser(
        "batch", help="apply SLR/STR to every .c file in a directory")
    batch.add_argument("directory")
    batch.add_argument("-o", "--output",
                       help="write transformed files to this directory")
    batch.add_argument("-j", "--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or 1)")
    batch.add_argument("--no-slr", action="store_true")
    batch.add_argument("--no-str", action="store_true")
    batch.add_argument("--slr-profile", choices=("glib", "c11"),
                       default="glib", dest="slr_profile",
                       help="safe-function family for SLR (Table I)")
    batch.add_argument("--stats", action="store_true",
                       help="also print frontend cache counters")
    batch.add_argument("--validate", action="store_true",
                       help="run the differential oracle on every "
                            "transformed file")
    batch.add_argument("--backends", default=None, metavar="A,B,C",
                       help="arbitrate these fix backends per file and "
                            "ship each file's oracle-best candidate "
                            "('all' = every registered backend; also "
                            "REPRO_BACKENDS; see 'repro backends')")
    batch.add_argument("--arbitration", default=None,
                       choices=("file", "site"),
                       help="winner selection under --backends: 'file' "
                            "ships one backend's whole-file fix "
                            "(default), 'site' composes the oracle-best "
                            "backend per call site and re-judges the "
                            "composite (also REPRO_ARBITRATION)")
    batch.add_argument("--profile", action="store_true",
                       help="render the per-file, per-stage timing "
                            "breakdown (also REPRO_PROFILE=1)")
    batch.add_argument("--no-disk-cache", action="store_true",
                       help="skip the persistent artifact store for "
                            "this run (also REPRO_DISK_CACHE=0)")
    batch.add_argument("--strict", action="store_true",
                       help="exit non-zero if any file degraded or "
                            "failed (default: contained failures ship "
                            "the input verbatim and exit 0)")
    batch.add_argument("--diagnostics-json", metavar="PATH",
                       default=None,
                       help="write contained-failure diagnostics to "
                            "this JSON file")
    batch.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-file wall-clock budget in pool workers "
                            "(also REPRO_TASK_TIMEOUT; default: off)")
    batch.add_argument("--task-retries", type=int, default=None,
                       metavar="N",
                       help="retries for crashed/timed-out files "
                            "(also REPRO_TASK_RETRIES; default: 1)")
    batch.add_argument("--resume", default=None, metavar="RUN_ID",
                       help="resume a crashed/interrupted journaled run "
                            "('latest' = most recent): completed files "
                            "replay from the journal, only unfinished "
                            "work is re-dispatched")
    batch.add_argument("--run-id", default=None, metavar="RUN_ID",
                       dest="run_id",
                       help="name this run's journal directory "
                            "(default: a generated timestamped id)")
    batch.add_argument("--no-run-log", action="store_true",
                       help="skip the write-ahead run journal and audit "
                            "trail (also REPRO_RUN_LOG=0); such a run "
                            "cannot be resumed")
    batch.set_defaults(func=cmd_batch)

    validate = sub.add_parser(
        "validate",
        help="differentially validate SLR/STR over a file or directory")
    validate.add_argument("path", help=".c file or directory of .c files")
    validate.add_argument("-j", "--jobs", type=int, default=None,
                          help="worker processes (default: REPRO_JOBS "
                               "or 1)")
    validate.add_argument("--no-slr", action="store_true")
    validate.add_argument("--no-str", action="store_true")
    validate.add_argument("--slr-profile", choices=("glib", "c11"),
                          default="glib", dest="slr_profile",
                          help="safe-function family for SLR (Table I)")
    validate.add_argument("--seed", type=int, default=None,
                          help="fuzz-input seed (default: "
                               "REPRO_VALIDATE_SEED or 20140623)")
    validate.add_argument("--no-disk-cache", action="store_true",
                          help="skip the persistent artifact store for "
                               "this run (also REPRO_DISK_CACHE=0)")
    validate.add_argument("--backends", default=None, metavar="A,B,C",
                          help="arbitrate these fix backends per file "
                               "('all' = every registered backend; "
                               "also REPRO_BACKENDS)")
    validate.add_argument("--arbitration", default=None,
                          choices=("file", "site"),
                          help="winner selection under --backends: "
                               "'file' (default) or per-'site' "
                               "composition (also REPRO_ARBITRATION)")
    validate.set_defaults(func=cmd_validate)

    backends_cmd = sub.add_parser(
        "backends", help="list the registered fix backends")
    backends_cmd.add_argument("-v", "--verbose", action="store_true",
                              help="also print each backend's "
                                   "description and config key")
    backends_cmd.set_defaults(func=cmd_backends)

    cache = sub.add_parser(
        "cache", help="manage the persistent artifact store "
                      "(REPRO_CACHE_DIR)")
    cache.add_argument("action", choices=("stats", "clear", "gc"),
                       help="stats: usage + lifetime hit/miss counters; "
                            "clear: drop every entry; gc: reclaim stale "
                            "tool versions, abandoned temp files, and "
                            "(with --max-age-days) old entries")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="gc entries older than this many days")
    cache.add_argument("--json", action="store_true",
                       help="with 'stats': machine-readable JSON "
                            "(per-family and per-shard counters, usage, "
                            "write-contention summary)")
    cache.set_defaults(func=cmd_cache)

    runs = sub.add_parser(
        "runs", help="inspect the crash-safe run journals "
                     "(REPRO_RUN_DIR): list, show a run's "
                     "crash-report → fix → verdict chain, or gc")
    runs.add_argument("action", choices=("list", "show", "gc"),
                      help="list: every run with event tallies; show: "
                           "replay one run's per-file audit trail; gc: "
                           "prune old run directories")
    runs.add_argument("run_id", nargs="?", default=None,
                      help="run id for 'show' (default: latest)")
    runs.add_argument("--file", default=None, metavar="NAME",
                      help="with 'show': full chain (diff included) "
                           "for one file")
    runs.add_argument("--diff", action="store_true",
                      help="with 'show': print winning diffs for every "
                           "file")
    runs.add_argument("--max-age-days", type=float, default=None,
                      help="with 'gc': remove runs older than this")
    runs.add_argument("--keep", type=int, default=None,
                      help="with 'gc': keep only the newest N runs")
    runs.set_defaults(func=cmd_runs)

    synth = sub.add_parser(
        "synth", help="synthesize a ground-truth corpus of planted "
                      "overflow/safe C files (deterministic by --seed)")
    synth.add_argument("--count", type=int, default=100,
                       help="number of files to generate (default: 100)")
    synth.add_argument("--seed", type=int, default=0,
                       help="generation seed; the same (count, seed) is "
                            "byte-for-byte reproducible (default: 0)")
    synth.add_argument("--out", default="synth_corpus", metavar="DIR",
                       help="output directory (default: synth_corpus)")
    synth.add_argument("--no-validate", action="store_true",
                       help="skip checking each mutant's planted label "
                            "against the bounds-checked VM")
    synth.set_defaults(func=cmd_synth)

    watch = sub.add_parser(
        "watch", help="watch a .c file or directory and re-analyze "
                      "edits incrementally (function-granular)")
    watch.add_argument("path", help=".c file or directory to watch")
    watch.add_argument("--profile", choices=("glib", "c11"),
                       default="glib", help="SLR replacement profile")
    watch.add_argument("--no-validate", action="store_true",
                       help="skip the differential oracle on each edit")
    watch.add_argument("--seed", type=int, default=None,
                       help="fuzz-input seed for the oracle")
    watch.add_argument("--json", action="store_true",
                       help="one JSON record per update instead of text")
    watch.add_argument("--once", action="store_true",
                       help="analyze everything once and exit (no loop)")
    watch.set_defaults(func=cmd_watch)

    run = sub.add_parser("run", help="run a C file in the checked VM")
    run.add_argument("file")
    run.add_argument("--stdin", default="", help="text fed to stdin")
    run.set_defaults(func=cmd_run)

    analyze_cmd = sub.add_parser("analyze",
                                 help="print analysis facts for a C file")
    analyze_cmd.add_argument("file")
    analyze_cmd.set_defaults(func=cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Long listings piped into ``head`` close stdout early; point
        # it at devnull so interpreter shutdown's flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
