"""CLI: ``python -m repro.samate dump`` — write the generated SAMATE-style
benchmark programs to disk as plain .c files (one per program, grouped by
CWE), for inspection or compilation outside the VM."""

from __future__ import annotations

import argparse
import pathlib

from .generator import generate_suite


def dump(out_dir: pathlib.Path, scale: float) -> int:
    suite = generate_suite(scale=scale)
    written = 0
    for cwe, programs in suite.items():
        cwe_dir = out_dir / f"CWE{cwe}"
        cwe_dir.mkdir(parents=True, exist_ok=True)
        for program in programs:
            (cwe_dir / f"{program.name}.c").write_text(program.source,
                                                       encoding="utf-8")
            written += 1
    manifest = out_dir / "MANIFEST.txt"
    lines = [f"{cwe}: {len(programs)} programs"
             for cwe, programs in suite.items()]
    manifest.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.samate",
        description="Dump the generated benchmark population to disk")
    sub = parser.add_subparsers(dest="command", required=True)
    dump_cmd = sub.add_parser("dump")
    dump_cmd.add_argument("--out", required=True,
                          help="output directory")
    dump_cmd.add_argument("--scale", type=float, default=0.01,
                          help="population scale (1.0 = all 4,505)")
    args = parser.parse_args(argv)
    written = dump(pathlib.Path(args.out), args.scale)
    print(f"wrote {written} programs to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
