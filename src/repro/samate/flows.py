"""Juliet-style control/data-flow variants.

The Juliet test suite multiplies each functional defect by a set of flow
variants: the flawed statements are wrapped in always-true (or
always-reached) control flow of increasing indirection.  We implement 18
variants matching Juliet's classic set in spirit — constants, static and
global flags, helper predicates, switch/while/for/goto wrappers — which is
what gives the generated population its size and its structural variety.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


def _indent(body: str, by: str = "    ") -> str:
    return "\n".join(by + line if line.strip() else line
                     for line in body.splitlines())


@dataclass(frozen=True)
class FlowVariant:
    """One control-flow wrapping of a flawed statement block."""

    vid: int
    name: str
    helpers: str            # file-scope declarations this variant needs
    wrap: Callable[[str], str]

    def apply(self, body: str) -> str:
        return self.wrap(body)


def _plain(body: str) -> str:
    return body


def _if_1(body: str) -> str:
    return f"if (1) {{\n{_indent(body)}\n}}"


def _if_5_eq_5(body: str) -> str:
    return f"if (5 == 5) {{\n{_indent(body)}\n}}"


def _if_static_const(body: str) -> str:
    return f"if (STATIC_CONST_TRUE) {{\n{_indent(body)}\n}}"


def _if_static_var(body: str) -> str:
    return f"if (static_true) {{\n{_indent(body)}\n}}"


def _if_static_five(body: str) -> str:
    return f"if (STATIC_CONST_FIVE == 5) {{\n{_indent(body)}\n}}"


def _if_static_five_var(body: str) -> str:
    return f"if (static_five == 5) {{\n{_indent(body)}\n}}"


def _if_static_fn(body: str) -> str:
    return f"if (static_returns_true()) {{\n{_indent(body)}\n}}"


def _if_global_const(body: str) -> str:
    return f"if (GLOBAL_CONST_TRUE) {{\n{_indent(body)}\n}}"


def _if_global_var(body: str) -> str:
    return f"if (global_true) {{\n{_indent(body)}\n}}"


def _if_global_fn(body: str) -> str:
    return f"if (global_returns_true()) {{\n{_indent(body)}\n}}"


def _if_else_dead(body: str) -> str:
    return (f"if (global_true) {{\n{_indent(body)}\n}}\n"
            f"else {{\n    printf(\"dead branch\\n\");\n}}")


def _if_global_five_const(body: str) -> str:
    return f"if (GLOBAL_CONST_FIVE == 5) {{\n{_indent(body)}\n}}"


def _if_global_five_var(body: str) -> str:
    return f"if (global_five == 5) {{\n{_indent(body)}\n}}"


def _switch_6(body: str) -> str:
    return ("switch (6) {\n"
            "case 6:\n"
            f"{_indent(body)}\n"
            "    break;\n"
            "default:\n"
            "    printf(\"dead case\\n\");\n"
            "    break;\n"
            "}")


def _while_1_break(body: str) -> str:
    return f"while (1) {{\n{_indent(body)}\n    break;\n}}"


def _for_once(body: str) -> str:
    return ("{\n    int flow_j;\n"
            "    for (flow_j = 0; flow_j < 1; flow_j++) {\n"
            f"{_indent(body, '        ')}\n"
            "    }\n}")


def _goto_forward(body: str) -> str:
    return ("goto flow_sink;\n"
            "flow_sink:\n"
            f"{body}")


_STATIC_HELPERS = """\
#define STATIC_CONST_TRUE 1
#define STATIC_CONST_FIVE 5
static int static_true = 1;
static int static_five = 5;
static int static_returns_true(void) { return 1; }
"""

_GLOBAL_HELPERS = """\
#define GLOBAL_CONST_TRUE 1
#define GLOBAL_CONST_FIVE 5
int global_true = 1;
int global_five = 5;
int global_returns_true(void) { return 1; }
"""

FLOW_VARIANTS: tuple[FlowVariant, ...] = (
    FlowVariant(1, "baseline", "", _plain),
    FlowVariant(2, "if_1", "", _if_1),
    FlowVariant(3, "if_5_eq_5", "", _if_5_eq_5),
    FlowVariant(4, "if_static_const", _STATIC_HELPERS, _if_static_const),
    FlowVariant(5, "if_static_var", _STATIC_HELPERS, _if_static_var),
    FlowVariant(6, "if_static_five_const", _STATIC_HELPERS,
                _if_static_five),
    FlowVariant(7, "if_static_five_var", _STATIC_HELPERS,
                _if_static_five_var),
    FlowVariant(8, "if_static_fn", _STATIC_HELPERS, _if_static_fn),
    FlowVariant(9, "if_global_const", _GLOBAL_HELPERS, _if_global_const),
    FlowVariant(10, "if_global_var", _GLOBAL_HELPERS, _if_global_var),
    FlowVariant(11, "if_global_fn", _GLOBAL_HELPERS, _if_global_fn),
    FlowVariant(12, "if_else_dead", _GLOBAL_HELPERS, _if_else_dead),
    FlowVariant(13, "if_global_five_const", _GLOBAL_HELPERS,
                _if_global_five_const),
    FlowVariant(14, "if_global_five_var", _GLOBAL_HELPERS,
                _if_global_five_var),
    FlowVariant(15, "switch_6", "", _switch_6),
    FlowVariant(16, "while_1_break", "", _while_1_break),
    FlowVariant(17, "for_once", "", _for_once),
    FlowVariant(18, "goto_forward", "", _goto_forward),
)
