"""SAMATE/Juliet-style test-program generator.

Builds the benchmark population of paper Table III: good/bad-function C
programs for the six buffer-overflow CWEs, as the cross product of
functional defect variants (what overflows and how), flow variants (the
control flow wrapping the flaw), and buffer-size parameters — truncated
deterministically to the paper's per-CWE counts:

======= ========= =============== ===============
CWE     programs  SLR applicable  STR applicable
======= ========= =============== ===============
121     1,877     1,096           1,877
122       890       644             890
124       680         —             680
126       416         —             416
127       624         —             624
242        18        18               —
======= ========= =============== ===============
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .flows import FLOW_VARIANTS, FlowVariant, _indent
from .variants import (
    CWE121_PTR_VARIANTS, CWE121_SLR_VARIANTS, CWE122_PTR_VARIANTS,
    CWE122_SLR_VARIANTS, CWE124_VARIANTS, CWE126_VARIANTS, CWE127_VARIANTS,
    CWE242_VARIANTS, FunctionalVariant,
)

#: Table III sizing: cwe -> (total, slr_applicable).
PAPER_COUNTS: dict[int, tuple[int, int]] = {
    121: (1877, 1096),
    122: (890, 644),
    124: (680, 0),
    126: (416, 0),
    127: (624, 0),
    242: (18, 18),
}

CWE_TITLES = {
    121: "Stack Based Overflow",
    122: "Heap Based Overflow",
    124: "Buffer Underwrite",
    126: "Buffer Overread",
    127: "Buffer Underread",
    242: "Use of Inherently Dangerous Function",
}

#: stdin given to every program run (long enough to overflow every gets
#: buffer in the suite).
DEFAULT_STDIN = b"A" * 64 + b"\n"

_HEADERS = "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"


@dataclass
class TestProgram:
    """One generated good/bad benchmark program."""

    name: str
    cwe: int
    variant: str
    flow: str
    sizes: tuple[int, int]
    source: str
    slr_applicable: bool
    str_applicable: bool
    uses_stdin: bool

    @property
    def stdin(self) -> bytes:
        return DEFAULT_STDIN


def render_program(variant: FunctionalVariant, flow: FlowVariant,
                   sizes: tuple[int, int]) -> TestProgram:
    """Assemble one test program source."""
    d, s = sizes
    bad = variant.make_bad(d, s)
    good_body = variant.make_good(d, s)
    name = f"CWE{variant.cwe}_{variant.name}_f{flow.vid:02d}_d{d}_s{s}"

    parts = [_HEADERS]
    parts.append(f"/* {name}\n"
                 f" * CWE-{variant.cwe}: {CWE_TITLES[variant.cwe]}\n"
                 f" * Functional variant: {variant.name}; "
                 f"flow variant {flow.vid} ({flow.name}).\n"
                 f" * The good function performs the operation safely; the\n"
                 f" * bad function contains the flaw.\n"
                 f" */\n")
    if flow.helpers:
        parts.append(flow.helpers)

    parts.append("static void good_case(void)\n{\n"
                 + _indent(good_body) + "\n}\n")

    bad_lines = []
    if bad.decls:
        bad_lines.append(bad.decls)
    bad_lines.append(flow.apply(bad.flawed))
    if bad.tail:
        bad_lines.append(bad.tail)
    parts.append("static void bad_case(void)\n{\n"
                 + _indent("\n".join(bad_lines)) + "\n}\n")

    parts.append("int main(void)\n"
                 "{\n"
                 '    printf("good:\\n");\n'
                 "    good_case();\n"
                 '    printf("bad:\\n");\n'
                 "    bad_case();\n"
                 '    printf("end\\n");\n'
                 "    return 0;\n"
                 "}\n")

    return TestProgram(
        name=name, cwe=variant.cwe, variant=variant.name,
        flow=flow.name, sizes=sizes, source="\n".join(parts),
        slr_applicable=variant.slr,
        str_applicable=variant.cwe != 242,
        uses_stdin=variant.uses_stdin)


def _segment(variants: tuple[FunctionalVariant, ...],
             target: int) -> list[TestProgram]:
    """Deterministically enumerate variant x sizes x flow combinations and
    truncate to ``target`` programs (flow varies fastest for diversity)."""
    programs: list[TestProgram] = []
    combos = itertools.product(
        variants,
        range(max(len(v.sizes) for v in variants)),
        FLOW_VARIANTS,
    )
    for variant, size_index, flow in combos:
        if len(programs) >= target:
            break
        if size_index >= len(variant.sizes):
            continue
        programs.append(render_program(variant, flow,
                                       variant.sizes[size_index]))
    if len(programs) < target:
        raise ValueError(
            f"variant space too small: wanted {target}, "
            f"got {len(programs)}")
    return programs


_CWE_SEGMENTS: dict[int, tuple[tuple[FunctionalVariant, ...],
                               tuple[FunctionalVariant, ...]]] = {
    121: (CWE121_SLR_VARIANTS, CWE121_PTR_VARIANTS),
    122: (CWE122_SLR_VARIANTS, CWE122_PTR_VARIANTS),
    124: ((), CWE124_VARIANTS),
    126: ((), CWE126_VARIANTS),
    127: ((), CWE127_VARIANTS),
    242: (CWE242_VARIANTS, ()),
}


def generate_cwe(cwe: int, total: int | None = None,
                 slr_count: int | None = None) -> list[TestProgram]:
    """Generate the programs of one CWE, sized to the paper by default."""
    paper_total, paper_slr = PAPER_COUNTS[cwe]
    total = paper_total if total is None else total
    slr_count = (min(paper_slr, total) if slr_count is None
                 else slr_count)
    slr_variants, ptr_variants = _CWE_SEGMENTS[cwe]
    programs: list[TestProgram] = []
    if slr_count and slr_variants:
        programs.extend(_segment(slr_variants, slr_count))
    remaining = total - len(programs)
    if remaining and ptr_variants:
        programs.extend(_segment(ptr_variants, remaining))
    if len(programs) != total:
        raise ValueError(f"CWE {cwe}: generated {len(programs)}, "
                         f"wanted {total}")
    return programs


def generate_suite(scale: float = 1.0) -> dict[int, list[TestProgram]]:
    """Generate the whole Table III population.

    ``scale`` < 1 produces a proportionally smaller population with the
    same SLR/STR applicability ratios (used by the sampled benchmarks);
    ``scale=1`` reproduces the paper's 4,505 programs.
    """
    suite: dict[int, list[TestProgram]] = {}
    for cwe, (total, slr_count) in PAPER_COUNTS.items():
        scaled_total = max(1, round(total * scale))
        scaled_slr = min(scaled_total, max(1 if slr_count else 0,
                                           round(slr_count * scale)))
        suite[cwe] = generate_cwe(cwe, scaled_total, scaled_slr)
    return suite


def suite_size(suite: dict[int, list[TestProgram]]) -> int:
    return sum(len(programs) for programs in suite.values())


def differential_inputs(program: TestProgram, *, seed: int | None = None,
                        fuzz_count: int = 4) -> list:
    """The differential oracle's probe set for one generated program.

    Benign lines that fit the smallest buffer any variant declares, the
    suite's overflow-triggering stdin (:data:`DEFAULT_STDIN`, sized to
    smash every ``gets`` buffer the flow/variant generators emit), and
    fuzz inputs seeded by the program name — deterministic across
    processes and worker counts.
    """
    from ..core.validate import (
        DifferentialInput, file_seed, fuzz_inputs,
    )
    return [
        DifferentialInput("empty", b"", "benign"),
        DifferentialInput("benign-line", b"ok\n", "benign"),
        DifferentialInput("suite-overflow", program.stdin, "overflow"),
        *fuzz_inputs(file_seed(program.name, seed), fuzz_count),
    ]
