"""SAMATE/Juliet-style benchmark generator (paper §IV-A, Table III)."""

from .flows import FLOW_VARIANTS, FlowVariant
from .generator import (
    CWE_TITLES, DEFAULT_STDIN, PAPER_COUNTS, TestProgram, generate_cwe,
    generate_suite, render_program, suite_size,
)
from .variants import FunctionalVariant

__all__ = [
    "FLOW_VARIANTS", "FlowVariant",
    "CWE_TITLES", "DEFAULT_STDIN", "PAPER_COUNTS", "TestProgram",
    "generate_cwe", "generate_suite", "render_program", "suite_size",
    "FunctionalVariant",
]
