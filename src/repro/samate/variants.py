"""Functional defect variants for each buffer-overflow CWE.

Each variant describes, for a (destination size, source size) pair, the
*bad* function body (which overflows) and the *good* function body (which
performs the equivalent operation safely) — mirroring the good/bad pair
structure of NIST SAMATE Juliet programs (paper §IV-A1).

Variants are tagged ``slr`` when the flaw comes from one of the six unsafe
library functions SLR replaces; the untagged ones are bad-pointer-operation
flaws that only STR addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class BodyParts:
    decls: str          # declarations + setup, before the flawed block
    flawed: str         # the statements the flow variant wraps
    tail: str           # sink statements after the flawed block


@dataclass(frozen=True)
class FunctionalVariant:
    name: str
    cwe: int
    slr: bool                           # uses an SLR-replaceable function
    uses_stdin: bool
    make_bad: Callable[[int, int], BodyParts]
    make_good: Callable[[int, int], str]
    sizes: tuple[tuple[int, int], ...]


def _fill_src(s: int) -> str:
    return (f"char src[{s}];\n"
            f"memset(src, 'A', {s - 1});\n"
            f"src[{s - 1}] = '\\0';")


# --------------------------------------------------------------- CWE 121
# Stack-based buffer overflow.

_STACK_SIZES = tuple((d, d * 2 + 2) for d in
                     (8, 10, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96,
                      100, 128, 160, 200, 256, 320, 400, 512, 640, 768,
                      800, 1024))


def _bad_strcpy_stack(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char dst[{d}];\n{_fill_src(s)}",
        flawed="strcpy(dst, src);",
        tail='printf("%s\\n", dst);')


def _good_strcpy_stack(d: int, s: int) -> str:
    return (f"char dst[{s}];\n{_fill_src(s)}\n"
            "strcpy(dst, src);\n"
            'printf("%s\\n", dst);')


def _bad_strcat_stack(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char dst[{d}];\ndst[0] = '\\0';\n{_fill_src(s)}",
        flawed="strcat(dst, src);",
        tail='printf("%s\\n", dst);')


def _good_strcat_stack(d: int, s: int) -> str:
    return (f"char dst[{s}];\ndst[0] = '\\0';\n{_fill_src(s)}\n"
            "strcat(dst, src);\n"
            'printf("%s\\n", dst);')


def _bad_sprintf_stack(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char dst[{d}];\n{_fill_src(s)}",
        flawed='sprintf(dst, "%s", src);',
        tail='printf("%s\\n", dst);')


def _good_sprintf_stack(d: int, s: int) -> str:
    return (f"char dst[{s}];\n{_fill_src(s)}\n"
            'sprintf(dst, "%s", src);\n'
            'printf("%s\\n", dst);')


def _bad_memcpy_stack(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char dst[{d}];\n{_fill_src(s)}",
        flawed=f"memcpy(dst, src, {s});",
        tail='printf("%c\\n", dst[0]);')


def _good_memcpy_stack(d: int, s: int) -> str:
    return (f"char dst[{d}];\n{_fill_src(s)}\n"
            f"memcpy(dst, src, {d});\n"
            'printf("%c\\n", dst[0]);')


def _bad_loop_stack(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char dst[{d}];\nint i;",
        flawed=(f"for (i = 0; i <= {d}; i++) {{\n"
                "    dst[i] = 'A';\n"
                "}"),
        tail='printf("%c\\n", dst[0]);')


def _good_loop_stack(d: int, s: int) -> str:
    return (f"char dst[{d}];\nint i;\n"
            f"for (i = 0; i < {d}; i++) {{\n"
            "    dst[i] = 'A';\n"
            "}\n"
            'printf("%c\\n", dst[0]);')


def _bad_index_stack(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char dst[{d}];\ndst[0] = 'B';",
        flawed=f"dst[{d}] = 'X';",
        tail='printf("%c\\n", dst[0]);')


def _good_index_stack(d: int, s: int) -> str:
    return (f"char dst[{d}];\ndst[0] = 'B';\n"
            f"dst[{d - 1}] = 'X';\n"
            'printf("%c\\n", dst[0]);')


def _bad_ptr_stack(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char dst[{d}];\nchar *p;\ndst[0] = 'B';\np = dst;",
        flawed=f"p += {d};\n*p = 'X';",
        tail='printf("%c\\n", dst[0]);')


def _good_ptr_stack(d: int, s: int) -> str:
    return (f"char dst[{d}];\nchar *p;\ndst[0] = 'B';\np = dst;\n"
            f"p += {d - 1};\n*p = 'X';\n"
            'printf("%c\\n", dst[0]);')


# --------------------------------------------------------------- CWE 122
# Heap-based buffer overflow.  Heap sizes are multiples of 8 so that
# malloc_usable_size == requested and the overflowing byte really faults.

_HEAP_SIZES = tuple((d, d * 2 + 16) for d in
                    (8, 16, 24, 32, 40, 48, 64, 80, 96, 128))
_HEAP_PTR_SIZES = tuple((d, 0) for d in
                        (8, 16, 24, 32, 40, 48, 64, 80, 96, 128))


def _bad_strcpy_heap(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char *dst = malloc({d});\n{_fill_src(s)}",
        flawed="strcpy(dst, src);",
        tail='printf("%s\\n", dst);')


def _good_strcpy_heap(d: int, s: int) -> str:
    return (f"char *dst = malloc({s});\n{_fill_src(s)}\n"
            "strcpy(dst, src);\n"
            'printf("%s\\n", dst);')


def _bad_strcat_heap(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=(f"char *dst = malloc({d});\ndst[0] = '\\0';\n"
               f"{_fill_src(s)}"),
        flawed="strcat(dst, src);",
        tail='printf("%s\\n", dst);')


def _good_strcat_heap(d: int, s: int) -> str:
    return (f"char *dst = malloc({s});\ndst[0] = '\\0';\n{_fill_src(s)}\n"
            "strcat(dst, src);\n"
            'printf("%s\\n", dst);')


def _bad_sprintf_heap(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char *dst = malloc({d});\n{_fill_src(s)}",
        flawed='sprintf(dst, "%s", src);',
        tail='printf("%s\\n", dst);')


def _good_sprintf_heap(d: int, s: int) -> str:
    return (f"char *dst = malloc({s});\n{_fill_src(s)}\n"
            'sprintf(dst, "%s", src);\n'
            'printf("%s\\n", dst);')


def _bad_memcpy_heap(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char *dst = malloc({d});\n{_fill_src(s)}",
        flawed=f"memcpy(dst, src, {s});",
        tail='printf("%c\\n", dst[0]);')


def _good_memcpy_heap(d: int, s: int) -> str:
    return (f"char *dst = malloc({d});\n{_fill_src(s)}\n"
            f"memcpy(dst, src, {d});\n"
            'printf("%c\\n", dst[0]);')


def _bad_loop_heap(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char *dst = malloc({d});\nint i;",
        flawed=(f"for (i = 0; i <= {d}; i++) {{\n"
                "    dst[i] = 'A';\n"
                "}"),
        tail='printf("%c\\n", dst[0]);')


def _good_loop_heap(d: int, s: int) -> str:
    return (f"char *dst = malloc({d});\nint i;\n"
            f"for (i = 0; i < {d}; i++) {{\n"
            "    dst[i] = 'A';\n"
            "}\n"
            'printf("%c\\n", dst[0]);')


def _bad_index_heap(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char *dst = malloc({d});\ndst[0] = 'B';",
        flawed=f"dst[{d}] = 'X';",
        tail='printf("%c\\n", dst[0]);')


def _good_index_heap(d: int, s: int) -> str:
    return (f"char *dst = malloc({d});\ndst[0] = 'B';\n"
            f"dst[{d - 1}] = 'X';\n"
            'printf("%c\\n", dst[0]);')


def _bad_ptr_heap(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=(f"char *dst = malloc({d});\nchar *p;\ndst[0] = 'B';\n"
               "p = dst;"),
        flawed=f"p += {d};\n*p = 'X';",
        tail='printf("%c\\n", dst[0]);')


def _good_ptr_heap(d: int, s: int) -> str:
    return (f"char *dst = malloc({d});\nchar *p;\ndst[0] = 'B';\n"
            "p = dst;\n"
            f"p += {d - 1};\n*p = 'X';\n"
            'printf("%c\\n", dst[0]);')


# --------------------------------------------------------------- CWE 124
# Buffer underwrite.

_UNDER_SIZES = tuple((d, k) for d in (8, 16, 32, 64, 128) for k in
                     (1, 2, 4))


def _bad_under_ptr(d: int, k: int) -> BodyParts:
    return BodyParts(
        decls=f"char buf[{d}];\nchar *p;\nbuf[0] = 'B';\np = buf;",
        flawed=f"p -= {k};\n*p = 'X';",
        tail='printf("%c\\n", buf[0]);')


def _good_under_ptr(d: int, k: int) -> str:
    return (f"char buf[{d}];\nchar *p;\nbuf[0] = 'B';\np = buf;\n"
            "*p = 'X';\n"
            'printf("%c\\n", buf[0]);')


def _bad_under_index(d: int, k: int) -> BodyParts:
    return BodyParts(
        decls=f"char buf[{d}];\nint i;\nbuf[0] = 'B';\ni = -{k};",
        flawed="buf[i] = 'X';",
        tail='printf("%c\\n", buf[0]);')


def _good_under_index(d: int, k: int) -> str:
    return (f"char buf[{d}];\nint i;\nbuf[0] = 'B';\ni = 0;\n"
            "buf[i] = 'X';\n"
            'printf("%c\\n", buf[0]);')


def _bad_under_loop(d: int, k: int) -> BodyParts:
    return BodyParts(
        decls=f"char buf[{d}];\nint i;\nbuf[0] = 'B';",
        flawed=(f"for (i = -{k}; i < 0; i++) {{\n"
                "    buf[i] = 'U';\n"
                "}"),
        tail='printf("%c\\n", buf[0]);')


def _good_under_loop(d: int, k: int) -> str:
    return (f"char buf[{d}];\nint i;\nbuf[0] = 'B';\n"
            f"for (i = 0; i < {min(k, d)}; i++) {{\n"
            "    buf[i] = 'U';\n"
            "}\n"
            'printf("%c\\n", buf[0]);')


# --------------------------------------------------------------- CWE 126
# Buffer over-read.

_OVERREAD_SIZES = tuple((d, d + d // 2) for d in
                        (8, 16, 24, 32, 48, 64, 96, 128))


def _bad_read_index(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=(f"char buf[{d}];\nchar c;\n"
               f"memset(buf, 'C', {d - 1});\nbuf[{d - 1}] = '\\0';"),
        flawed=f"c = buf[{d}];",
        tail='printf("%d\\n", c);')


def _good_read_index(d: int, s: int) -> str:
    return (f"char buf[{d}];\nchar c;\n"
            f"memset(buf, 'C', {d - 1});\nbuf[{d - 1}] = '\\0';\n"
            f"c = buf[{d - 2}];\n"
            'printf("%d\\n", c);')


def _bad_read_strlen(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char buf[{d}];\nint n;\nmemset(buf, 'A', {d});",
        flawed="n = (int)strlen(buf);",
        tail='printf("%d\\n", n);')


def _good_read_strlen(d: int, s: int) -> str:
    return (f"char buf[{d}];\nint n;\n"
            f"memset(buf, 'A', {d - 1});\nbuf[{d - 1}] = '\\0';\n"
            "n = (int)strlen(buf);\n"
            'printf("%d\\n", n);')


def _bad_read_loop(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=(f"char buf[{d}];\nint i;\nint total;\n"
               f"memset(buf, 'V', {d});\ntotal = 0;"),
        flawed=(f"for (i = 0; i <= {d}; i++) {{\n"
                "    total = total + buf[i];\n"
                "}"),
        tail='printf("%d\\n", total);')


def _good_read_loop(d: int, s: int) -> str:
    return (f"char buf[{d}];\nint i;\nint total;\n"
            f"memset(buf, 'V', {d});\ntotal = 0;\n"
            f"for (i = 0; i < {d}; i++) {{\n"
            "    total = total + buf[i];\n"
            "}\n"
            'printf("%d\\n", total);')


# --------------------------------------------------------------- CWE 127
# Buffer under-read.

_UNDERREAD_SIZES = tuple((d, k) for d in (8, 16, 32, 64) for k in
                         (1, 2, 3))


def _bad_underread_index(d: int, k: int) -> BodyParts:
    return BodyParts(
        decls=(f"char buf[{d}];\nchar c;\nint i;\n"
               f"memset(buf, 'R', {d - 1});\nbuf[{d - 1}] = '\\0';\n"
               f"i = -{k};"),
        flawed="c = buf[i];",
        tail='printf("%d\\n", c);')


def _good_underread_index(d: int, k: int) -> str:
    return (f"char buf[{d}];\nchar c;\nint i;\n"
            f"memset(buf, 'R', {d - 1});\nbuf[{d - 1}] = '\\0';\n"
            "i = 0;\n"
            "c = buf[i];\n"
            'printf("%d\\n", c);')


def _bad_underread_ptr(d: int, k: int) -> BodyParts:
    return BodyParts(
        decls=(f"char buf[{d}];\nchar *p;\nchar c;\n"
               f"memset(buf, 'R', {d - 1});\nbuf[{d - 1}] = '\\0';\n"
               "p = buf;"),
        flawed=f"p -= {k};\nc = *p;",
        tail='printf("%d\\n", c);')


def _good_underread_ptr(d: int, k: int) -> str:
    return (f"char buf[{d}];\nchar *p;\nchar c;\n"
            f"memset(buf, 'R', {d - 1});\nbuf[{d - 1}] = '\\0';\n"
            "p = buf;\n"
            "c = *p;\n"
            'printf("%d\\n", c);')


def _bad_underread_loop(d: int, k: int) -> BodyParts:
    return BodyParts(
        decls=(f"char buf[{d}];\nint i;\nint total;\n"
               f"memset(buf, 'R', {d - 1});\nbuf[{d - 1}] = '\\0';\n"
               "total = 0;"),
        flawed=(f"for (i = -{k}; i < {d - 1}; i++) {{\n"
                "    total = total + buf[i];\n"
                "}"),
        tail='printf("%d\\n", total);')


def _good_underread_loop(d: int, k: int) -> str:
    return (f"char buf[{d}];\nint i;\nint total;\n"
            f"memset(buf, 'R', {d - 1});\nbuf[{d - 1}] = '\\0';\n"
            "total = 0;\n"
            f"for (i = 0; i < {d - 1}; i++) {{\n"
            "    total = total + buf[i];\n"
            "}\n"
            'printf("%d\\n", total);')


# --------------------------------------------------------------- CWE 242
# Use of inherently dangerous function: gets.

_GETS_SIZES = ((16, 0),)


def _bad_gets(d: int, s: int) -> BodyParts:
    return BodyParts(
        decls=f"char buf[{d}];",
        flawed="gets(buf);",
        tail='printf("%s\\n", buf);')


def _good_gets(d: int, s: int) -> str:
    return (f"char buf[{d}];\n"
            "fgets(buf, sizeof(buf), stdin);\n"
            'printf("%s", buf);')


# ------------------------------------------------------------- registries

CWE121_SLR_VARIANTS = (
    FunctionalVariant("strcpy_stack", 121, True, False,
                      _bad_strcpy_stack, _good_strcpy_stack, _STACK_SIZES),
    FunctionalVariant("strcat_stack", 121, True, False,
                      _bad_strcat_stack, _good_strcat_stack, _STACK_SIZES),
    FunctionalVariant("sprintf_stack", 121, True, False,
                      _bad_sprintf_stack, _good_sprintf_stack,
                      _STACK_SIZES),
    FunctionalVariant("memcpy_stack", 121, True, False,
                      _bad_memcpy_stack, _good_memcpy_stack, _STACK_SIZES),
)

CWE121_PTR_VARIANTS = (
    FunctionalVariant("loop_stack", 121, False, False,
                      _bad_loop_stack, _good_loop_stack, _STACK_SIZES),
    FunctionalVariant("index_stack", 121, False, False,
                      _bad_index_stack, _good_index_stack, _STACK_SIZES),
    FunctionalVariant("ptr_stack", 121, False, False,
                      _bad_ptr_stack, _good_ptr_stack, _STACK_SIZES),
)

CWE122_SLR_VARIANTS = (
    FunctionalVariant("strcpy_heap", 122, True, False,
                      _bad_strcpy_heap, _good_strcpy_heap, _HEAP_SIZES),
    FunctionalVariant("strcat_heap", 122, True, False,
                      _bad_strcat_heap, _good_strcat_heap, _HEAP_SIZES),
    FunctionalVariant("sprintf_heap", 122, True, False,
                      _bad_sprintf_heap, _good_sprintf_heap, _HEAP_SIZES),
    FunctionalVariant("memcpy_heap", 122, True, False,
                      _bad_memcpy_heap, _good_memcpy_heap, _HEAP_SIZES),
)

CWE122_PTR_VARIANTS = (
    FunctionalVariant("loop_heap", 122, False, False,
                      _bad_loop_heap, _good_loop_heap, _HEAP_PTR_SIZES),
    FunctionalVariant("index_heap", 122, False, False,
                      _bad_index_heap, _good_index_heap, _HEAP_PTR_SIZES),
    FunctionalVariant("ptr_heap", 122, False, False,
                      _bad_ptr_heap, _good_ptr_heap, _HEAP_PTR_SIZES),
)

CWE124_VARIANTS = (
    FunctionalVariant("under_ptr", 124, False, False,
                      _bad_under_ptr, _good_under_ptr, _UNDER_SIZES),
    FunctionalVariant("under_index", 124, False, False,
                      _bad_under_index, _good_under_index, _UNDER_SIZES),
    FunctionalVariant("under_loop", 124, False, False,
                      _bad_under_loop, _good_under_loop, _UNDER_SIZES),
)

CWE126_VARIANTS = (
    FunctionalVariant("read_index", 126, False, False,
                      _bad_read_index, _good_read_index, _OVERREAD_SIZES),
    FunctionalVariant("read_strlen", 126, False, False,
                      _bad_read_strlen, _good_read_strlen,
                      _OVERREAD_SIZES),
    FunctionalVariant("read_loop", 126, False, False,
                      _bad_read_loop, _good_read_loop, _OVERREAD_SIZES),
)

CWE127_VARIANTS = (
    FunctionalVariant("underread_index", 127, False, False,
                      _bad_underread_index, _good_underread_index,
                      _UNDERREAD_SIZES),
    FunctionalVariant("underread_ptr", 127, False, False,
                      _bad_underread_ptr, _good_underread_ptr,
                      _UNDERREAD_SIZES),
    FunctionalVariant("underread_loop", 127, False, False,
                      _bad_underread_loop, _good_underread_loop,
                      _UNDERREAD_SIZES),
)

CWE242_VARIANTS = (
    FunctionalVariant("gets_stdin", 242, True, True,
                      _bad_gets, _good_gets, _GETS_SIZES),
)
