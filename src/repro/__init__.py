"""repro — reproduction of "Automatically Fixing C Buffer Overflows Using
Program Transformations" (DSN 2014).

Quickstart::

    from repro import fix_buffer_overflows, run_c

    fixed = fix_buffer_overflows(C_SOURCE)
    print(fixed.new_text)          # the transformed program
    result = run_c(fixed.new_text) # execute it in the bounds-checked VM

Subpackages:

* :mod:`repro.cfront`   — C preprocessor, parser, rewriter
* :mod:`repro.analysis` — name binding, types, CFG, reaching defs,
  points-to/alias, dependence, interprocedural write checks
* :mod:`repro.core`     — the SLR and STR transformations (the paper's
  contribution) and Algorithm 1
* :mod:`repro.vm`       — bounds-checked C interpreter (evaluation substrate)
* :mod:`repro.samate`   — Juliet-style benchmark generator (CWE 121/122/
  124/126/127/242)
* :mod:`repro.corpus`   — miniature open-source-style test programs
* :mod:`repro.eval`     — regenerates every table and figure of the paper
"""

from __future__ import annotations

__version__ = "1.0.0"

from .core import (
    AnalysisSession, SafeLibraryReplacement, SafeTypeReplacement,
    SourceProgram, TransformResult, ValidationReport, apply_batch,
    apply_slr, apply_str, get_session, validate_pair, validate_result,
)
from .cfront import Preprocessor, preprocess_and_parse
from .vm import ExecutionResult, run_source


def preprocess(text: str, filename: str = "<source>") -> str:
    """Preprocess C source with the builtin headers; returns the text the
    transformations operate on.  Served from the shared session's
    content-keyed cache."""
    return get_session().preprocess(text, filename).text


def fix_buffer_overflows(text: str, filename: str = "<source>",
                         *, slr: bool = True,
                         str_transform: bool = True) -> TransformResult:
    """One-call API: preprocess then apply SLR and/or STR to C source.

    Returns the last transformation's :class:`TransformResult`; its
    ``new_text`` holds the fully transformed program and ``outcomes`` the
    per-site log (including precondition failures and their reasons).
    """
    current = preprocess(text, filename)
    result: TransformResult | None = None
    if slr:
        result = apply_slr(current, filename)
        current = result.new_text
    if str_transform:
        str_result = apply_str(current, filename)
        if result is not None:
            str_result.outcomes = result.outcomes + str_result.outcomes
            str_result.original_text = result.original_text
        result = str_result
    if result is None:
        raise ValueError("at least one of slr/str_transform must be True")
    return result


def run_c(text: str, *, stdin: bytes = b"",
          step_limit: int = 5_000_000) -> ExecutionResult:
    """Run (already preprocessed) C text in the bounds-checked VM."""
    return run_source(text, stdin=stdin, step_limit=step_limit)


__all__ = [
    "__version__",
    "AnalysisSession", "get_session",
    "SafeLibraryReplacement", "SafeTypeReplacement", "SourceProgram",
    "TransformResult", "ValidationReport", "apply_batch", "apply_slr",
    "apply_str", "validate_pair", "validate_result",
    "Preprocessor", "preprocess_and_parse",
    "ExecutionResult", "run_source",
    "preprocess", "fix_buffer_overflows", "run_c",
]
