"""Native C library implementations for the VM.

The *unsafe* functions here behave exactly like their C counterparts — they
write as many bytes as the input demands — so out-of-bounds writes surface
as :class:`MemoryFault` from the memory model, not as silent corruption.
The *safe* alternatives (``g_strlcpy`` and friends) truncate to the given
size, which is how a transformed program avoids the fault.

The printf engine implements flags/width/precision including ``%.3o``,
needed to reproduce the LibTIFF tiff2pdf sign-extension overflow (§IV-A2).
"""

from __future__ import annotations

from .memory import MemoryFault, NULL, Pointer, VMError, usable_size

# ------------------------------------------------------------------ helpers


def _cstr(interp, ptr) -> bytes:
    if not isinstance(ptr, Pointer):
        raise VMError("expected a string pointer")
    return interp.memory.read_cstring(ptr)


def _ptr(value) -> Pointer:
    if isinstance(value, Pointer):
        return value
    if value == 0:
        return NULL
    raise VMError(f"expected a pointer, got {value!r}")


def _int(value) -> int:
    if isinstance(value, Pointer):
        from .memory import encode_pointer
        return encode_pointer(value)
    return int(value)


class _ByteSink:
    """Destination abstraction for the printf engine."""

    def put(self, byte: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finish(self) -> None:
        pass


class _StreamSink(_ByteSink):
    def __init__(self, buffer: bytearray):
        self.buffer = buffer
        self.count = 0

    def put(self, byte: int) -> None:
        self.buffer.append(byte)
        self.count += 1


class _MemorySink(_ByteSink):
    """sprintf: unbounded writes, each one bounds-checked -> faults."""

    def __init__(self, interp, dest: Pointer):
        self.interp = interp
        self.dest = dest
        self.count = 0

    def put(self, byte: int) -> None:
        self.interp.memory.write_bytes(self.dest.moved(self.count),
                                       bytes([byte]))
        self.count += 1

    def finish(self) -> None:
        self.interp.memory.write_bytes(self.dest.moved(self.count), b"\x00")


class _BoundedMemorySink(_ByteSink):
    """snprintf family: writes at most size-1 chars plus NUL."""

    def __init__(self, interp, dest: Pointer, size: int):
        self.interp = interp
        self.dest = dest
        self.size = size
        self.count = 0          # chars that *would* have been written

    def put(self, byte: int) -> None:
        if self.count < self.size - 1:
            self.interp.memory.write_bytes(self.dest.moved(self.count),
                                           bytes([byte]))
        self.count += 1

    def finish(self) -> None:
        if self.size > 0:
            terminator = min(self.count, self.size - 1)
            self.interp.memory.write_bytes(self.dest.moved(terminator),
                                           b"\x00")


# ------------------------------------------------------------ printf engine

_INT_CONVERSIONS = "diuxXoc"


def _format(interp, sink: _ByteSink, fmt: bytes, args: list) -> int:
    arg_index = 0

    def next_arg():
        nonlocal arg_index
        if arg_index >= len(args):
            raise VMError("printf: more conversions than arguments")
        value = args[arg_index]
        arg_index += 1
        return value

    i = 0
    n = len(fmt)
    while i < n:
        byte = fmt[i]
        if byte != 0x25:            # '%'
            sink.put(byte)
            i += 1
            continue
        i += 1
        if i < n and fmt[i] == 0x25:
            sink.put(0x25)
            i += 1
            continue
        # flags
        flags = set()
        while i < n and chr(fmt[i]) in "-+ 0#":
            flags.add(chr(fmt[i]))
            i += 1
        # width
        width = 0
        if i < n and fmt[i] == ord("*"):
            width = _int(next_arg())
            i += 1
        else:
            while i < n and 0x30 <= fmt[i] <= 0x39:
                width = width * 10 + (fmt[i] - 0x30)
                i += 1
        # precision
        precision = None
        if i < n and fmt[i] == ord("."):
            i += 1
            precision = 0
            if i < n and fmt[i] == ord("*"):
                precision = _int(next_arg())
                i += 1
            else:
                while i < n and 0x30 <= fmt[i] <= 0x39:
                    precision = precision * 10 + (fmt[i] - 0x30)
                    i += 1
        # length modifiers
        length = ""
        while i < n and chr(fmt[i]) in "hlLzjt":
            length += chr(fmt[i])
            i += 1
        if i >= n:
            break
        conv = chr(fmt[i])
        i += 1
        _emit(interp, sink, conv, flags, width, precision, length, next_arg)
    sink.finish()
    return getattr(sink, "count", 0)


def _emit(interp, sink, conv, flags, width, precision, length, next_arg):
    if conv in "di":
        value = _to_signed(_int(next_arg()), length)
        text = _pad_int(str(abs(value)), value < 0, flags, width, precision)
    elif conv == "u":
        value = _to_unsigned(_int(next_arg()), length)
        text = _pad_int(str(value), False, flags, width, precision)
    elif conv in "xX":
        value = _to_unsigned(_int(next_arg()), length)
        digits = format(value, "x" if conv == "x" else "X")
        if "#" in flags and value != 0:
            digits = ("0x" if conv == "x" else "0X") + digits
        text = _pad_int(digits, False, flags, width, precision)
    elif conv == "o":
        value = _to_unsigned(_int(next_arg()), length)
        digits = format(value, "o")
        text = _pad_int(digits, False, flags, width, precision)
    elif conv == "c":
        text = chr(_int(next_arg()) & 0xFF)
        text = _pad_str(text, flags, width)
    elif conv == "s":
        ptr = next_arg()
        if isinstance(ptr, Pointer) and ptr.is_null:
            raw = b"(null)"
        else:
            raw = _cstr(interp, ptr)
        if precision is not None:
            raw = raw[:precision]
        padded = _pad_str(raw.decode("latin-1"), flags, width)
        for ch in padded.encode("latin-1"):
            sink.put(ch)
        return
    elif conv == "p":
        ptr = next_arg()
        if isinstance(ptr, Pointer):
            text = "(nil)" if ptr.is_null else \
                f"0x{(ptr.block << 16 | (ptr.offset & 0xFFFF)):x}"
        else:
            text = f"0x{_int(ptr):x}"
        text = _pad_str(text, flags, width)
    elif conv in "fFeEgG":
        value = next_arg()
        number = float(value if not isinstance(value, Pointer) else 0.0)
        prec = 6 if precision is None else precision
        spec = {"f": "f", "F": "f", "e": "e", "E": "E",
                "g": "g", "G": "G"}[conv]
        text = format(number, f".{prec}{spec}")
        text = _pad_str(text, flags, width)
    else:
        raise VMError(f"printf: unsupported conversion %{conv}")
    for ch in text.encode("latin-1"):
        sink.put(ch)


def _to_signed(value: int, length: str) -> int:
    bits = 64 if "l" in length or "z" in length or "j" in length else 32
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _to_unsigned(value: int, length: str) -> int:
    bits = 64 if "l" in length or "z" in length or "j" in length else 32
    return value & ((1 << bits) - 1)


def _pad_int(digits: str, negative: bool, flags, width, precision) -> str:
    if precision is not None and len(digits) < precision:
        digits = "0" * (precision - len(digits)) + digits
    sign = "-" if negative else ("+" if "+" in flags else "")
    body = sign + digits
    if len(body) >= width:
        return body
    if "-" in flags:
        return body + " " * (width - len(body))
    if "0" in flags and precision is None:
        return sign + "0" * (width - len(body)) + digits
    return " " * (width - len(body)) + body


def _pad_str(text: str, flags, width) -> str:
    if len(text) >= width:
        return text
    if "-" in flags:
        return text + " " * (width - len(text))
    return " " * (width - len(text)) + text


# ------------------------------------------------------------ stdio natives

def _stream_sink(interp, stream) -> _StreamSink:
    handle = interp.files.get(stream.block) if isinstance(stream, Pointer) \
        else None
    if handle is not None and handle.get("std") == "err":
        return _StreamSink(interp.stderr_buffer())
    return _StreamSink(interp.stdout)


def native_printf(interp, args):
    fmt = _cstr(interp, args[0])
    sink = _StreamSink(interp.stdout)
    return _format(interp, sink, fmt, args[1:])


def native_fprintf(interp, args):
    stream = args[0]
    fmt = _cstr(interp, args[1])
    sink = _stream_sink(interp, stream)
    return _format(interp, sink, fmt, args[2:])


def native_sprintf(interp, args):
    dest = _ptr(args[0])
    fmt = _cstr(interp, args[1])
    return _format(interp, _MemorySink(interp, dest), fmt, args[2:])


def native_snprintf(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1])
    fmt = _cstr(interp, args[2])
    return _format(interp, _BoundedMemorySink(interp, dest, size), fmt,
                   args[3:])


def native_vsprintf(interp, args):
    dest = _ptr(args[0])
    fmt = _cstr(interp, args[1])
    state = interp.valist_for(args[2])
    return _format(interp, _MemorySink(interp, dest), fmt,
                   state.args[state.index:])


def native_vsnprintf(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1])
    fmt = _cstr(interp, args[2])
    state = interp.valist_for(args[3])
    return _format(interp, _BoundedMemorySink(interp, dest, size), fmt,
                   state.args[state.index:])


def native_g_snprintf(interp, args):
    return native_snprintf(interp, args)


def native_g_vsnprintf(interp, args):
    return native_vsnprintf(interp, args)


def native_puts(interp, args):
    interp.write_stdout(_cstr(interp, args[0]) + b"\n")
    return 0


def native_putchar(interp, args):
    interp.write_stdout(bytes([_int(args[0]) & 0xFF]))
    return _int(args[0])


def native_fputs(interp, args):
    sink = _stream_sink(interp, args[1])
    for byte in _cstr(interp, args[0]):
        sink.put(byte)
    return 0


def native_fputc(interp, args):
    sink = _stream_sink(interp, args[1])
    sink.put(_int(args[0]) & 0xFF)
    return _int(args[0])


def native_perror(interp, args):
    message = _cstr(interp, args[0]) if isinstance(args[0], Pointer) and \
        not args[0].is_null else b"error"
    interp.stderr_buffer().extend(message + b"\n")
    return 0


def native_gets(interp, args):
    """The inherently dangerous one: unbounded copy from stdin."""
    dest = _ptr(args[0])
    line = interp.read_stdin_line()
    if line is None:
        return NULL
    body = line[:-1] if line.endswith(b"\n") else line
    # Byte-by-byte so the exact overflowing byte faults.
    for i, byte in enumerate(body):
        interp.memory.write_bytes(dest.moved(i), bytes([byte]))
    interp.memory.write_bytes(dest.moved(len(body)), b"\x00")
    return dest


def native_fgets(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1])
    if size <= 0 or interp.stdin_pos >= len(interp.stdin):
        return NULL
    # Read at most size-1 bytes, stopping after a newline; unlike gets,
    # unread characters stay in the stream.
    body = bytearray()
    while len(body) < size - 1 and interp.stdin_pos < len(interp.stdin):
        byte = interp.stdin[interp.stdin_pos]
        interp.stdin_pos += 1
        body.append(byte)
        if byte == 0x0A:
            break
    interp.memory.write_bytes(dest, bytes(body))
    interp.memory.write_bytes(dest.moved(len(body)), b"\x00")
    return dest


def native_getchar(interp, args):
    if interp.stdin_pos >= len(interp.stdin):
        return -1
    byte = interp.stdin[interp.stdin_pos]
    interp.stdin_pos += 1
    return byte


def native_fgetc(interp, args):
    return native_getchar(interp, args)


# ------------------------------------------------------------- file natives

def native_fopen(interp, args):
    name = _cstr(interp, args[0]).decode("latin-1")
    mode = _cstr(interp, args[1]).decode("latin-1")
    vfs = interp.virtual_fs()
    if "r" in mode and name not in vfs:
        return NULL
    handle_ptr = interp.memory.alloc(1, "file", f"FILE:{name}")
    if "w" in mode:
        vfs[name] = bytearray()
    data = vfs.setdefault(name, bytearray())
    pos = len(data) if "a" in mode else 0
    interp.files[handle_ptr.block] = {"name": name, "pos": pos,
                                      "mode": mode}
    return handle_ptr


def _file_of(interp, stream) -> dict:
    handle = interp.files.get(stream.block) \
        if isinstance(stream, Pointer) else None
    if handle is None:
        raise VMError("operation on invalid FILE*")
    return handle


def native_fclose(interp, args):
    handle = _file_of(interp, args[0])
    handle["closed"] = True
    return 0


def native_fread(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1]) * _int(args[2])
    handle = _file_of(interp, args[3])
    if "std" in handle:
        data = interp.stdin[interp.stdin_pos:interp.stdin_pos + size]
        interp.stdin_pos += len(data)
    else:
        buffer = interp.virtual_fs()[handle["name"]]
        data = bytes(buffer[handle["pos"]:handle["pos"] + size])
        handle["pos"] += len(data)
    interp.memory.write_bytes(dest, bytes(data))
    item = max(_int(args[1]), 1)
    return len(data) // item


def native_fwrite(interp, args):
    src = _ptr(args[0])
    size = _int(args[1]) * _int(args[2])
    data = interp.memory.read_bytes(src, size)
    handle = _file_of(interp, args[3])
    if handle.get("std") == "out":
        interp.write_stdout(data)
    elif handle.get("std") == "err":
        interp.stderr_buffer().extend(data)
    else:
        buffer = interp.virtual_fs()[handle["name"]]
        pos = handle["pos"]
        buffer[pos:pos + size] = data
        handle["pos"] = pos + size
    return _int(args[2])


def native_fflush(interp, args):
    return 0


def native_feof(interp, args):
    handle = _file_of(interp, args[0])
    if "std" in handle:
        return 1 if interp.stdin_pos >= len(interp.stdin) else 0
    return 1 if handle["pos"] >= len(interp.virtual_fs()[handle["name"]]) \
        else 0


def native_ferror(interp, args):
    return 0


def native_fseek(interp, args):
    handle = _file_of(interp, args[0])
    offset = _int(args[1])
    whence = _int(args[2])
    size = len(interp.virtual_fs().get(handle.get("name", ""), b""))
    base = {0: 0, 1: handle.get("pos", 0), 2: size}.get(whence, 0)
    handle["pos"] = base + offset
    return 0


def native_ftell(interp, args):
    return _file_of(interp, args[0]).get("pos", 0)


def native_remove(interp, args):
    name = _cstr(interp, args[0]).decode("latin-1")
    interp.virtual_fs().pop(name, None)
    return 0


# ------------------------------------------------------------ string natives

def native_strlen(interp, args):
    return len(_cstr(interp, args[0]))


def native_strcpy(interp, args):
    dest = _ptr(args[0])
    src = _cstr(interp, args[1])
    for i, byte in enumerate(src):
        interp.memory.write_bytes(dest.moved(i), bytes([byte]))
    interp.memory.write_bytes(dest.moved(len(src)), b"\x00")
    return dest


def native_strncpy(interp, args):
    dest = _ptr(args[0])
    src = _cstr(interp, args[1])
    n = _int(args[2])
    body = src[:n]
    for i, byte in enumerate(body):
        interp.memory.write_bytes(dest.moved(i), bytes([byte]))
    for i in range(len(body), n):
        interp.memory.write_bytes(dest.moved(i), b"\x00")
    return dest


def native_strcat(interp, args):
    dest = _ptr(args[0])
    old = _cstr(interp, dest)
    src = _cstr(interp, args[1])
    start = len(old)
    for i, byte in enumerate(src):
        interp.memory.write_bytes(dest.moved(start + i), bytes([byte]))
    interp.memory.write_bytes(dest.moved(start + len(src)), b"\x00")
    return dest


def native_strncat(interp, args):
    dest = _ptr(args[0])
    old = _cstr(interp, dest)
    src = _cstr(interp, args[1])[:_int(args[2])]
    start = len(old)
    for i, byte in enumerate(src):
        interp.memory.write_bytes(dest.moved(start + i), bytes([byte]))
    interp.memory.write_bytes(dest.moved(start + len(src)), b"\x00")
    return dest


def native_g_strlcpy(interp, args):
    """glib: copy at most dest_size-1 chars, always NUL-terminate."""
    dest = _ptr(args[0])
    src = _cstr(interp, args[1])
    size = _int(args[2])
    if size > 0:
        body = src[:size - 1]
        interp.memory.write_bytes(dest, body)
        interp.memory.write_bytes(dest.moved(len(body)), b"\x00")
    return len(src)


def native_g_strlcat(interp, args):
    dest = _ptr(args[0])
    src = _cstr(interp, args[1])
    size = _int(args[2])
    old = _cstr(interp, dest)
    if len(old) >= size:
        return size + len(src)
    room = size - len(old) - 1
    body = src[:max(room, 0)]
    interp.memory.write_bytes(dest.moved(len(old)), body)
    interp.memory.write_bytes(dest.moved(len(old) + len(body)), b"\x00")
    return len(old) + len(src)


def native_strcmp(interp, args):
    a = _cstr(interp, args[0])
    b = _cstr(interp, args[1])
    return 0 if a == b else (-1 if a < b else 1)


def native_strncmp(interp, args):
    n = _int(args[2])
    a = _cstr(interp, args[0])[:n]
    b = _cstr(interp, args[1])[:n]
    return 0 if a == b else (-1 if a < b else 1)


def native_strchr(interp, args):
    base = _ptr(args[0])
    needle = _int(args[1]) & 0xFF
    text = _cstr(interp, base)
    if needle == 0:
        return base.moved(len(text))
    idx = text.find(bytes([needle]))
    return NULL if idx == -1 else base.moved(idx)


def native_strcspn(interp, args):
    text = _cstr(interp, args[0])
    reject = _cstr(interp, args[1])
    for idx, byte in enumerate(text):
        if byte in reject:
            return idx
    return len(text)


def native_strrchr(interp, args):
    base = _ptr(args[0])
    needle = _int(args[1]) & 0xFF
    text = _cstr(interp, base)
    idx = text.rfind(bytes([needle]))
    return NULL if idx == -1 else base.moved(idx)


def native_strstr(interp, args):
    base = _ptr(args[0])
    haystack = _cstr(interp, base)
    needle = _cstr(interp, args[1])
    idx = haystack.find(needle)
    return NULL if idx == -1 else base.moved(idx)


def native_strdup(interp, args):
    text = _cstr(interp, args[0])
    ptr = interp.memory.alloc_heap(len(text) + 1, "strdup")
    interp.memory.write_bytes(ptr, text + b"\x00")
    return ptr


def native_memcpy(interp, args):
    dest = _ptr(args[0])
    src = _ptr(args[1])
    n = _int(args[2])
    # Byte-by-byte from the source so partial overlap and exact fault
    # offsets behave like the real function.
    data = interp.memory.read_bytes(src, n)
    interp.memory.write_bytes(dest, data)
    return dest


def native_memmove(interp, args):
    return native_memcpy(interp, args)


def native_memset(interp, args):
    dest = _ptr(args[0])
    interp.memory.memset(dest, _int(args[1]), _int(args[2]))
    return dest


def native_memcmp(interp, args):
    n = _int(args[2])
    a = interp.memory.read_bytes(_ptr(args[0]), n)
    b = interp.memory.read_bytes(_ptr(args[1]), n)
    return 0 if a == b else (-1 if a < b else 1)


def native_memchr(interp, args):
    base = _ptr(args[0])
    n = _int(args[2])
    data = interp.memory.read_bytes(base, n)
    idx = data.find(bytes([_int(args[1]) & 0xFF]))
    return NULL if idx == -1 else base.moved(idx)


# ------------------------------------------------------------- heap natives

def native_malloc(interp, args):
    return interp.memory.alloc_heap(_int(args[0]), "malloc")


def native_calloc(interp, args):
    return interp.memory.alloc_heap(_int(args[0]) * _int(args[1]), "calloc")


def native_realloc(interp, args):
    old = args[0]
    size = _int(args[1])
    new = interp.memory.alloc_heap(size, "realloc")
    if isinstance(old, Pointer) and not old.is_null:
        block = interp.memory.block_of(old)
        keep = min(block.size - old.offset, size)
        interp.memory.write_bytes(new,
                                  interp.memory.read_bytes(old, keep))
        interp.memory.free(old)
    return new


def native_free(interp, args):
    interp.memory.free(_ptr(args[0]))
    return 0


def native_alloca(interp, args):
    ptr = interp.memory.alloc(_int(args[0]), "stack", "alloca")
    if interp._frames:
        interp._frames[-1].blocks.append(ptr)
    return ptr


def native_malloc_usable_size(interp, args):
    return interp.memory.usable_size_of(_ptr(args[0]))


# ----------------------------------------------------------- misc natives

def native_atoi(interp, args):
    text = _cstr(interp, args[0]).decode("latin-1").strip()
    sign = 1
    if text[:1] in "+-":
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    digits = ""
    for ch in text:
        if not ch.isdigit():
            break
        digits += ch
    return sign * int(digits) if digits else 0


def native_atol(interp, args):
    return native_atoi(interp, args)


def native_atof(interp, args):
    text = _cstr(interp, args[0]).decode("latin-1").strip()
    try:
        return float(text)
    except ValueError:
        return 0.0


def native_strtol(interp, args):
    text = _cstr(interp, args[0]).decode("latin-1")
    base = _int(args[2]) if len(args) > 2 else 10
    stripped = text.lstrip()
    sign = 1
    index = len(text) - len(stripped)
    if stripped[:1] in "+-":
        sign = -1 if stripped[0] == "-" else 1
        stripped = stripped[1:]
        index += 1
    if base == 0:
        base = 16 if stripped[:2].lower() == "0x" else \
            8 if stripped[:1] == "0" else 10
    if base == 16 and stripped[:2].lower() == "0x":
        stripped = stripped[2:]
        index += 2
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:base]
    value = 0
    consumed = 0
    for ch in stripped:
        if ch.lower() not in digits:
            break
        value = value * base + digits.index(ch.lower())
        consumed += 1
    endptr = args[1]
    if isinstance(endptr, Pointer) and not endptr.is_null:
        from ..cfront.ctypes_model import CHAR_PTR
        interp._store(endptr, CHAR_PTR,
                      _ptr(args[0]).moved(index + consumed))
    return sign * value


def native_strtoul(interp, args):
    return native_strtol(interp, args) & ((1 << 64) - 1)


def native_abort(interp, args):
    raise MemoryFault("abort", "program called abort()")


def native_exit(interp, args):
    from .interp import ExitProgram
    raise ExitProgram(_int(args[0]) if args else 0)


def native_abs(interp, args):
    return abs(_int(args[0]))


def native_rand(interp, args):
    # Deterministic LCG so before/after comparisons are reproducible.
    state = interp.env_vars.get("__rand_state", "12345")
    value = (int(state) * 1103515245 + 12345) & 0x7FFFFFFF
    interp.env_vars["__rand_state"] = str(value)
    return value


def native_srand(interp, args):
    interp.env_vars["__rand_state"] = str(_int(args[0]) & 0x7FFFFFFF)
    return 0


def native_getenv(interp, args):
    name = _cstr(interp, args[0]).decode("latin-1")
    value = interp.env_vars.get(name)
    if value is None:
        return NULL
    ptr = interp.memory.alloc_bytes(value.encode("latin-1") + b"\x00",
                                    "global", f"env:{name}")
    return ptr


def native_assert_fail(interp, args):
    expr = _cstr(interp, args[0]) if isinstance(args[0], Pointer) else b"?"
    raise MemoryFault("assertion-failure",
                      f"assertion failed: {expr.decode('latin-1')}")


def native_va_start(interp, args):
    interp.va_start(_ptr(args[0]))
    return 0


def native_va_end(interp, args):
    interp.va_end(_ptr(args[0]))
    return 0


def native_va_copy(interp, args):
    interp.va_copy(_ptr(args[0]), _ptr(args[1]))
    return 0


def native_time(interp, args):
    return 1_700_000_000        # deterministic


def native_clock(interp, args):
    return interp.steps


def _ctype_native(fn):
    def wrapper(interp, args):
        return fn(_int(args[0]) & 0xFF)
    return wrapper


def native_sscanf(interp, args):
    """Minimal sscanf: %d, %u, %s, %c (enough for corpus test suites)."""
    text = _cstr(interp, args[0])
    fmt = _cstr(interp, args[1])
    out_args = list(args[2:])
    from ..cfront.ctypes_model import INT
    pos = 0
    matched = 0
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch == 0x25 and i + 1 < len(fmt):
            conv = chr(fmt[i + 1])
            i += 2
            while pos < len(text) and text[pos:pos + 1].isspace():
                pos += 1
            if conv in "du":
                start = pos
                if pos < len(text) and text[pos:pos + 1] in b"+-":
                    pos += 1
                while pos < len(text) and \
                        chr(text[pos]).isdigit():
                    pos += 1
                if pos == start:
                    break
                value = int(text[start:pos])
                interp._store(_ptr(out_args[matched]), INT, value)
                matched += 1
            elif conv == "s":
                start = pos
                while pos < len(text) and \
                        not text[pos:pos + 1].isspace():
                    pos += 1
                if pos == start:
                    break
                dest = _ptr(out_args[matched])
                interp.memory.write_bytes(dest, text[start:pos] + b"\x00")
                matched += 1
            elif conv == "c":
                if pos >= len(text):
                    break
                dest = _ptr(out_args[matched])
                interp.memory.write_bytes(dest, text[pos:pos + 1])
                pos += 1
                matched += 1
            else:
                break
        elif chr(ch).isspace():
            while pos < len(text) and text[pos:pos + 1].isspace():
                pos += 1
            i += 1
        else:
            if pos < len(text) and text[pos] == ch:
                pos += 1
                i += 1
            else:
                break
    return matched




# --------------------------------------------- C11 Annex K (TR 24731)

def _constraint_violation(interp, dest, size: int,
                          message: str = "runtime-constraint violation"):
    """Annex K runtime-constraint handling (abort-less): empty the
    destination, invoke any installed handler, and report failure via
    the return value."""
    if isinstance(dest, Pointer) and not dest.is_null and size > 0:
        interp.memory.write_bytes(dest, b"\x00")
    handler = getattr(interp, "constraint_handler", None)
    if handler is not None:
        msg = interp.memory.alloc_bytes(
            message.encode("ascii", "replace") + b"\x00", "string",
            "constraint-msg")
        # handler(const char *msg, void *ptr, errno_t error)
        interp._call_value(handler, [msg, NULL, 22])
    return 22        # EINVAL-ish errno_t


def native_set_constraint_handler_s(interp, args):
    """Install a runtime-constraint handler; returns the previous one
    (NULL for the initial default, which silently ignores)."""
    previous = getattr(interp, "constraint_handler", None)
    handler = args[0] if args else None
    if isinstance(handler, Pointer) and handler.is_null:
        handler = None
    elif isinstance(handler, int) and handler == 0:
        handler = None
    interp.constraint_handler = handler
    return previous if previous is not None else NULL


def native_strcpy_s(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1])
    src = _cstr(interp, args[2])
    if len(src) + 1 > size:
        return _constraint_violation(interp, dest, size,
                                     "strcpy_s: src too long")
    interp.memory.write_bytes(dest, src + b"\x00")
    return 0


def native_strcat_s(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1])
    old = _cstr(interp, dest)
    src = _cstr(interp, args[2])
    if len(old) + len(src) + 1 > size:
        return _constraint_violation(interp, dest, size,
                                     "strcat_s: result too long")
    interp.memory.write_bytes(dest.moved(len(old)), src + b"\x00")
    return 0


def native_sprintf_s(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1])
    fmt = _cstr(interp, args[2])
    sink = _BoundedMemorySink(interp, dest, size)
    written = _format(interp, sink, fmt, args[3:])
    if written >= size:
        # Annex K: the formatted output must fit entirely.
        _constraint_violation(interp, dest, size,
                              "sprintf_s: output too long")
        return -1
    return written


def native_vsprintf_s(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1])
    fmt = _cstr(interp, args[2])
    state = interp.valist_for(args[3])
    sink = _BoundedMemorySink(interp, dest, size)
    written = _format(interp, sink, fmt, state.args[state.index:])
    if written >= size:
        _constraint_violation(interp, dest, size,
                              "vsprintf_s: output too long")
        return -1
    return written


def native_memcpy_s(interp, args):
    dest = _ptr(args[0])
    destsz = _int(args[1])
    src = _ptr(args[2])
    n = _int(args[3])
    if n > destsz:
        if destsz > 0:
            interp.memory.memset(dest, 0, destsz)
        return _constraint_violation(interp, NULL, 0,
                                     "memcpy_s: n exceeds destsz")
    interp.memory.memcopy(dest, src, n)
    return 0


def native_gets_s(interp, args):
    dest = _ptr(args[0])
    size = _int(args[1])
    line = interp.read_stdin_line()
    if line is None or size <= 0:
        return NULL
    body = line[:-1] if line.endswith(b"\n") else line
    if len(body) + 1 > size:
        # Runtime constraint: discard the line, empty the destination.
        _constraint_violation(interp, dest, size,
                              "gets_s: line too long")
        return NULL
    interp.memory.write_bytes(dest, body + b"\x00")
    return dest


# ----------------------------------- S3Library signature-preserving safety
#
# The s3lib fix backend renames unsafe calls to these wrappers *without*
# inserting a size argument: the wrapper discovers the destination's real
# capacity from the VM's allocation metadata (standing in for
# S3Library's interposed allocator bookkeeping) and truncates instead of
# overflowing.  Signatures — and return values on in-bounds inputs —
# match the unsafe originals exactly, which is the backend's whole point.

def _s3_capacity(interp, dest: Pointer) -> int:
    """Bytes available at ``dest`` within its allocation."""
    block = interp.memory.block_of(dest)
    return max(0, block.size - dest.offset)


def native_s3_strcpy(interp, args):
    dest = _ptr(args[0])
    src = _cstr(interp, args[1])
    cap = _s3_capacity(interp, dest)
    if cap > 0:
        body = src[:cap - 1]
        interp.memory.write_bytes(dest, body + b"\x00")
    return dest


def native_s3_strcat(interp, args):
    dest = _ptr(args[0])
    src = _cstr(interp, args[1])
    cap = _s3_capacity(interp, dest)
    old = _cstr(interp, dest)
    if len(old) < cap:
        room = cap - len(old) - 1
        body = src[:max(room, 0)]
        interp.memory.write_bytes(dest.moved(len(old)), body + b"\x00")
    return dest


def native_s3_sprintf(interp, args):
    dest = _ptr(args[0])
    fmt = _cstr(interp, args[1])
    cap = _s3_capacity(interp, dest)
    sink = _BoundedMemorySink(interp, dest, cap)
    written = _format(interp, sink, fmt, args[2:])
    # sprintf returns the chars written; report what actually landed.
    return min(written, max(cap - 1, 0))


def native_s3_vsprintf(interp, args):
    dest = _ptr(args[0])
    fmt = _cstr(interp, args[1])
    cap = _s3_capacity(interp, dest)
    state = interp.valist_for(args[2])
    sink = _BoundedMemorySink(interp, dest, cap)
    written = _format(interp, sink, fmt, state.args[state.index:])
    return min(written, max(cap - 1, 0))


def native_s3_gets(interp, args):
    dest = _ptr(args[0])
    cap = _s3_capacity(interp, dest)
    line = interp.read_stdin_line()
    if line is None or cap <= 0:
        return NULL
    body = line[:-1] if line.endswith(b"\n") else line
    interp.memory.write_bytes(dest, body[:cap - 1] + b"\x00")
    return dest


def native_s3_memcpy(interp, args):
    dest = _ptr(args[0])
    src = _ptr(args[1])
    n = _int(args[2])
    cap = _s3_capacity(interp, dest)
    data = interp.memory.read_bytes(src, min(n, cap))
    interp.memory.write_bytes(dest, data)
    return dest


NATIVE_FUNCTIONS = {
    "set_constraint_handler_s": native_set_constraint_handler_s,
    "s3_strcpy": native_s3_strcpy,
    "s3_strcat": native_s3_strcat,
    "s3_sprintf": native_s3_sprintf,
    "s3_vsprintf": native_s3_vsprintf,
    "s3_gets": native_s3_gets,
    "s3_memcpy": native_s3_memcpy,
    "printf": native_printf,
    "fprintf": native_fprintf,
    "sprintf": native_sprintf,
    "snprintf": native_snprintf,
    "vsprintf": native_vsprintf,
    "vsnprintf": native_vsnprintf,
    "g_snprintf": native_g_snprintf,
    "g_vsnprintf": native_g_vsnprintf,
    "puts": native_puts,
    "putchar": native_putchar,
    "fputs": native_fputs,
    "fputc": native_fputc,
    "perror": native_perror,
    "gets": native_gets,
    "gets_s": native_gets_s,
    "strcpy_s": native_strcpy_s,
    "strcat_s": native_strcat_s,
    "sprintf_s": native_sprintf_s,
    "vsprintf_s": native_vsprintf_s,
    "memcpy_s": native_memcpy_s,
    "fgets": native_fgets,
    "getchar": native_getchar,
    "fgetc": native_fgetc,
    "fopen": native_fopen,
    "fclose": native_fclose,
    "fread": native_fread,
    "fwrite": native_fwrite,
    "fflush": native_fflush,
    "feof": native_feof,
    "ferror": native_ferror,
    "fseek": native_fseek,
    "ftell": native_ftell,
    "remove": native_remove,
    "sscanf": native_sscanf,
    "strlen": native_strlen,
    "strcpy": native_strcpy,
    "strncpy": native_strncpy,
    "strcat": native_strcat,
    "strncat": native_strncat,
    "g_strlcpy": native_g_strlcpy,
    "g_strlcat": native_g_strlcat,
    "strcmp": native_strcmp,
    "strncmp": native_strncmp,
    "strchr": native_strchr,
    "strcspn": native_strcspn,
    "strrchr": native_strrchr,
    "strstr": native_strstr,
    "strdup": native_strdup,
    "memcpy": native_memcpy,
    "memmove": native_memmove,
    "memset": native_memset,
    "memcmp": native_memcmp,
    "memchr": native_memchr,
    "malloc": native_malloc,
    "calloc": native_calloc,
    "realloc": native_realloc,
    "free": native_free,
    "alloca": native_alloca,
    "malloc_usable_size": native_malloc_usable_size,
    "atoi": native_atoi,
    "atol": native_atol,
    "atof": native_atof,
    "strtol": native_strtol,
    "strtoul": native_strtoul,
    "abort": native_abort,
    "exit": native_exit,
    "abs": native_abs,
    "labs": native_abs,
    "rand": native_rand,
    "srand": native_srand,
    "getenv": native_getenv,
    "__assert_fail": native_assert_fail,
    "__builtin_va_start": native_va_start,
    "__builtin_va_end": native_va_end,
    "__builtin_va_copy": native_va_copy,
    "time": native_time,
    "clock": native_clock,
    "isalpha": _ctype_native(lambda c: 1 if chr(c).isalpha() else 0),
    "isdigit": _ctype_native(lambda c: 1 if chr(c).isdigit() else 0),
    "isalnum": _ctype_native(lambda c: 1 if chr(c).isalnum() else 0),
    "isspace": _ctype_native(lambda c: 1 if chr(c).isspace() else 0),
    "isupper": _ctype_native(lambda c: 1 if chr(c).isupper() else 0),
    "islower": _ctype_native(lambda c: 1 if chr(c).islower() else 0),
    "isprint": _ctype_native(lambda c: 1 if 32 <= c < 127 else 0),
    "toupper": _ctype_native(lambda c: ord(chr(c).upper()) if c < 128
                             else c),
    "tolower": _ctype_native(lambda c: ord(chr(c).lower()) if c < 128
                             else c),
}
