"""Runtime value kinds that are not plain Python ints/floats/Pointers."""

from __future__ import annotations

from dataclasses import dataclass

from ..cfront.ctypes_model import CType


@dataclass
class StructValue:
    """A struct rvalue: a byte image plus its type."""

    data: bytes
    ctype: CType

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class FuncRef:
    """A function designator (or function pointer target)."""

    name: str


class VaListState:
    """State behind a ``va_list``: the trailing call arguments."""

    def __init__(self, args: list):
        self.args = args
        self.index = 0

    def next(self):
        if self.index >= len(self.args):
            from .memory import VMError
            raise VMError("va_arg past the end of the argument list")
        value = self.args[self.index]
        self.index += 1
        return value

    def copy(self) -> "VaListState":
        clone = VaListState(self.args)
        clone.index = self.index
        return clone
