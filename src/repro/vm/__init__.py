"""C interpreter with bounds-checked memory (the evaluation substrate).

The paper compiles and runs programs natively; our substitute executes them
in a VM whose memory model detects every out-of-bounds access, which makes
"the bad function overflows before the transformation and not after"
directly observable.
"""

from .interp import (
    ExecutionResult, Interpreter, MEMORY_TRAP_KINDS, run_program_files,
    run_source,
)
from .memory import Memory, MemoryFault, NULL, Pointer, VMError, usable_size

__all__ = [
    "ExecutionResult", "Interpreter", "MEMORY_TRAP_KINDS",
    "run_program_files", "run_source",
    "Memory", "MemoryFault", "NULL", "Pointer", "VMError", "usable_size",
]
