"""The C interpreter.

Executes parsed (preprocessed) translation units against the bounds-checked
:class:`~repro.vm.memory.Memory`.  The evaluation harness runs each SAMATE
good/bad pair and each corpus test suite through this interpreter before
and after transformation; a buffer overflow manifests as a
:class:`MemoryFault` in the result rather than as silent corruption.
"""

from __future__ import annotations

import struct as _struct
import sys as _sys

from ..cfront import astnodes as ast
from ..cfront.ctypes_model import (
    ArrayType, BoolType, CHAR, CType, EnumType, FloatType, FunctionType,
    INT, IntType, PointerType, StructType, VaListType, VoidType,
    usual_arithmetic_conversions,
)
from .memory import (
    Memory, MemoryFault, NULL, Pointer, StepLimitExceeded, VMError,
    decode_pointer, encode_pointer,
)
from .values import FuncRef, StructValue, VaListState

_PTR_DIFF_T = IntType("long")


class _Signal(Exception):
    pass


class _Break(_Signal):
    pass


class _Continue(_Signal):
    pass


class _Return(_Signal):
    def __init__(self, value):
        self.value = value


class _Goto(_Signal):
    def __init__(self, label: str):
        self.label = label


class ExitProgram(Exception):
    def __init__(self, code: int):
        self.code = code


#: Fault kinds raised by the bounds-checked :class:`Memory` — the traps a
#: buffer-overflow fix is *supposed* to make disappear.  ``step-limit``,
#: ``mem-limit`` and ``vm-error`` are resource/harness faults, not memory
#: traps: a transformation that makes one of those vanish changed
#: semantics.
MEMORY_TRAP_KINDS = frozenset({
    "buffer-overflow", "buffer-underwrite", "buffer-overread",
    "buffer-underread", "null-dereference", "wild-pointer",
    "use-after-free", "double-free", "invalid-free", "bad-alloc",
    "stack-overflow", "runaway-string", "uninitialized-read",
})


class ExecutionResult:
    """Outcome of one program run."""

    def __init__(self, stdout: bytes, exit_code: int | None,
                 fault: str | None, fault_detail: str, steps: int,
                 entered: frozenset = frozenset()):
        self.stdout = stdout
        self.exit_code = exit_code
        self.fault = fault
        self.fault_detail = fault_detail
        self.steps = steps
        #: Names of user-defined functions the run entered — the
        #: incremental validator's reuse predicate (see
        #: ``Interpreter.entered``).
        self.entered = entered

    @property
    def ok(self) -> bool:
        return self.fault is None

    @property
    def memory_trapped(self) -> bool:
        """Did the run die on a memory-safety trap (vs. running clean, or
        hitting a resource/harness fault)?"""
        return self.fault in MEMORY_TRAP_KINDS

    def observable(self) -> tuple[bytes, int | None, str | None]:
        """The behaviour the differential oracle compares: everything an
        external observer of the process could see.  Step counts and
        fault *details* (offsets, block labels) are deliberately
        excluded — they differ across equivalent programs."""
        return (self.stdout, self.exit_code, self.fault)

    @property
    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    def __repr__(self) -> str:
        if self.ok:
            return f"ExecutionResult(exit={self.exit_code}, " \
                   f"{len(self.stdout)}B stdout)"
        return f"ExecutionResult(FAULT {self.fault}: {self.fault_detail})"


class _Frame:
    __slots__ = ("scopes", "blocks", "valist_args", "function")

    def __init__(self, function: str):
        self.function = function
        self.scopes: list[dict[str, tuple[Pointer, CType]]] = [{}]
        self.blocks: list[Pointer] = []
        self.valist_args: list = []

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, ptr: Pointer, ctype: CType) -> None:
        self.scopes[-1][name] = (ptr, ctype)

    def lookup(self, name: str) -> tuple[Pointer, CType] | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None


class Interpreter:
    """Interprets one linked set of translation units."""

    #: Maximum C call-stack depth; exceeding it is a stack-overflow fault.
    MAX_CALL_DEPTH = 1200

    def __init__(self, units: list[ast.TranslationUnit],
                 *, stdin: bytes = b"", step_limit: int = 5_000_000,
                 mem_limit: int | None = None,
                 env: dict[str, str] | None = None):
        # Each C frame nests a few dozen Python frames; give the host
        # interpreter room for MAX_CALL_DEPTH C frames.
        if _sys.getrecursionlimit() < 100_000:
            _sys.setrecursionlimit(100_000)
        self.units = units
        self.memory = Memory(limit_bytes=mem_limit)
        self.stdout = bytearray()
        self.stdin = stdin
        self.stdin_pos = 0
        self.env_vars = dict(env or {})
        self.steps = 0
        self.step_limit = step_limit
        #: User-defined functions entered at least once — every call,
        #: direct or through a function pointer, dispatches through
        #: :meth:`call_function`.  The incremental validator reuses a
        #: cached run iff no edited function appears in this set.
        self.entered: set[str] = set()
        self.functions: dict[str, ast.FunctionDef] = {}
        self.globals: dict[str, tuple[Pointer, CType]] = {}
        self._string_cache: dict[str, Pointer] = {}
        self._frames: list[_Frame] = []
        self._valists: dict[int, VaListState] = {}
        self._func_blocks: dict[str, Pointer] = {}
        self._block_func: dict[int, str] = {}
        self.files: dict[int, dict] = {}
        self.stderr = bytearray()
        self._vfs: dict[str, bytearray] = {}
        #: TR 24731 runtime-constraint handler installed via
        #: ``set_constraint_handler_s`` (a FuncRef/function pointer, or
        #: None for the default ignore-handler).
        self.constraint_handler = None

        from .libc import NATIVE_FUNCTIONS
        from .stralloc_rt import STRALLOC_NATIVES
        self.natives = dict(NATIVE_FUNCTIONS)
        self.natives.update(STRALLOC_NATIVES)

        self._load_program()
        self._setup_stdio()

    def stderr_buffer(self) -> bytearray:
        return self.stderr

    def virtual_fs(self) -> dict[str, bytearray]:
        return self._vfs

    def add_file(self, name: str, data: bytes) -> None:
        """Install a file into the VM's virtual filesystem."""
        self._vfs[name] = bytearray(data)

    def _setup_stdio(self) -> None:
        for name, std in (("stdin", "in"), ("stdout", "out"),
                          ("stderr", "err")):
            if name not in self.globals:
                continue
            handle = self.memory.alloc(1, "file", name)
            self.files[handle.block] = {"std": std}
            ptr, ctype = self.globals[name]
            if isinstance(ctype, PointerType):
                self._store(ptr, ctype, handle)

    # ------------------------------------------------------------- loading

    def _load_program(self) -> None:
        for unit in self.units:
            # The item scan is pure (functions by name, global declarators
            # in declaration order), so it is computed once per parsed unit
            # and replayed by every interpreter built over it.
            index = unit._vm_index
            if index is None:
                functions = {}
                global_decls = []
                for item in unit.items:
                    if isinstance(item, ast.FunctionDef):
                        functions[item.name] = item
                    elif isinstance(item, ast.Declaration) and \
                            not item.is_typedef:
                        for declarator in item.declarators:
                            # Prototypes and unnamed declarators never get
                            # storage (_load_global's first early-out).
                            if declarator.name and not isinstance(
                                    declarator.ctype, FunctionType):
                                global_decls.append((item, declarator))
                index = unit._vm_index = (functions, global_decls)
            self.functions.update(index[0])
        # Globals: allocate then initialize in declaration order.
        for unit in self.units:
            for item, declarator in unit._vm_index[1]:
                self._load_global(item, declarator)

    def _load_global(self, decl: ast.Declaration,
                     declarator: ast.Declarator) -> None:
        ctype = declarator.ctype
        name = declarator.name
        if isinstance(ctype, FunctionType) or not name:
            return
        if decl.storage_class == "extern" and declarator.init is None:
            # Builtins like stdin/stdout/errno get storage too, so that
            # programs can read/compare them.
            if name in self.globals:
                return
        if name in self.globals and declarator.init is None:
            return
        if name not in self.globals:
            size = self._sizeof(ctype)
            ptr = self.memory.alloc(size, "global", name)
            self.globals[name] = (ptr, ctype)
        if declarator.init is not None:
            ptr, _ = self.globals[name]
            self._initialize(ptr, ctype, declarator.init)

    # ---------------------------------------------------------------- run

    def run(self, entry: str = "main", args: list | None = None
            ) -> ExecutionResult:
        try:
            value = self.call_function(entry, args or [])
            code = value if isinstance(value, int) else 0
            return self._result(code, None, "")
        except ExitProgram as exc:
            return self._result(exc.code, None, "")
        except MemoryFault as exc:
            return self._result(None, exc.kind, str(exc))
        except StepLimitExceeded as exc:
            return self._result(None, "step-limit", str(exc))
        except VMError as exc:
            return self._result(None, "vm-error", str(exc))

    def _result(self, code: int | None, fault: str | None,
                detail: str) -> ExecutionResult:
        return ExecutionResult(bytes(self.stdout), code, fault, detail,
                               self.steps, frozenset(self.entered))

    # ------------------------------------------------------------ calling

    def call_function(self, name: str, args: list):
        fn = self.functions.get(name)
        if fn is None:
            native = self.natives.get(name)
            if native is not None:
                return native(self, args)
            raise VMError(f"call to undefined function {name!r}")
        if len(self._frames) >= self.MAX_CALL_DEPTH:
            raise MemoryFault("stack-overflow",
                              f"call depth exceeded {self.MAX_CALL_DEPTH} "
                              f"frames (runaway recursion?)")
        self.entered.add(name)
        frame = _Frame(name)
        params = fn.params
        for i, param in enumerate(params):
            ctype = param.ctype
            value = args[i] if i < len(args) else 0
            ptr = self.memory.alloc(self._sizeof(ctype), "stack",
                                    f"{name}:{param.name}")
            frame.blocks.append(ptr)
            self._store(ptr, ctype, value)
            if param.name:
                frame.declare(param.name, ptr, ctype)
        frame.valist_args = list(args[len(params):])
        self._frames.append(frame)
        try:
            self._exec_block(fn.body, new_scope=False)
            result = 0
        except _Return as ret:
            result = ret.value if ret.value is not None else 0
        except _Goto as goto:
            raise VMError(f"goto to undefined label {goto.label!r} "
                          f"in {name}") from None
        finally:
            popped = self._frames.pop()
            for ptr in popped.blocks:
                self.memory.release(ptr)
        return result

    # -------------------------------------------------------- declarations

    def _exec_declaration(self, decl: ast.Declaration) -> None:
        if decl.is_typedef:
            return
        frame = self._frames[-1]
        for declarator in decl.declarators:
            ctype = declarator.ctype
            if isinstance(ctype, FunctionType) or not declarator.name:
                continue
            if decl.storage_class == "static":
                key = f"{frame.function}::{declarator.name}"
                if key not in self.globals:
                    ptr = self.memory.alloc(self._sizeof(ctype), "global",
                                            key)
                    self.globals[key] = (ptr, ctype)
                    if declarator.init is not None:
                        self._initialize(ptr, ctype, declarator.init)
                ptr, _ = self.globals[key]
                frame.declare(declarator.name, ptr, ctype)
                continue
            ptr = self.memory.alloc(self._sizeof(ctype), "stack",
                                    f"{frame.function}:{declarator.name}")
            frame.blocks.append(ptr)
            frame.declare(declarator.name, ptr, ctype)
            if declarator.init is not None:
                self._initialize(ptr, ctype, declarator.init)

    def _initialize(self, ptr: Pointer, ctype: CType,
                    init: ast.Expression) -> None:
        if isinstance(init, ast.InitList):
            self._init_list(ptr, ctype, init)
            return
        if isinstance(ctype, ArrayType) and \
                isinstance(init, ast.StringLiteral):
            data = init.value + b"\x00"
            if ctype.length is not None and len(data) > ctype.length:
                data = data[:ctype.length]
            self.memory.write_bytes(ptr, data)
            return
        value = self._eval(init)
        self._store(ptr, ctype, value)

    def _init_list(self, ptr: Pointer, ctype: CType,
                   init: ast.InitList) -> None:
        if isinstance(ctype, ArrayType):
            elem_size = self._sizeof(ctype.element)
            for i, item in enumerate(init.items):
                self._initialize(ptr.moved(i * elem_size), ctype.element,
                                 item)
        elif isinstance(ctype, StructType) and ctype.is_complete:
            for i, item in enumerate(init.items):
                if i >= len(ctype.members):
                    break
                mname, mtype = ctype.members[i]
                offset, _ = ctype.member_offset(mname)
                self._initialize(ptr.moved(offset), mtype, item)
        else:
            if init.items:
                self._store(ptr, ctype, self._eval(init.items[0]))

    # ---------------------------------------------------------- statements

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitExceeded(
                f"exceeded {self.step_limit} interpreter steps")

    def _exec(self, stmt: ast.Node) -> None:
        # Hot loop: exact-type dict dispatch (the AST hierarchy is flat,
        # so ``stmt.__class__`` identifies the handler) with the step
        # accounting of ``_tick`` inlined.
        self.steps = steps = self.steps + 1
        if steps > self.step_limit:
            raise StepLimitExceeded(
                f"exceeded {self.step_limit} interpreter steps")
        handler = _EXEC_DISPATCH.get(stmt.__class__)
        if handler is None:
            raise VMError(f"cannot execute {type(stmt).__name__}")
        handler(self, stmt)

    def _exec_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        if stmt.expr is not None:
            self._eval(stmt.expr)

    def _exec_if(self, stmt: ast.IfStmt) -> None:
        if self._truthy(self._eval(stmt.cond)):
            self._exec(stmt.then_stmt)
        elif stmt.else_stmt is not None:
            self._exec(stmt.else_stmt)

    def _exec_while(self, stmt: ast.WhileStmt) -> None:
        while self._truthy(self._eval(stmt.cond)):
            self._tick()
            try:
                self._exec(stmt.body)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_do_while(self, stmt: ast.DoWhileStmt) -> None:
        while True:
            self._tick()
            try:
                self._exec(stmt.body)
            except _Break:
                break
            except _Continue:
                pass
            if not self._truthy(self._eval(stmt.cond)):
                break

    def _exec_for(self, stmt: ast.ForStmt) -> None:
        self._frames[-1].push()
        try:
            if stmt.init is not None:
                self._exec(stmt.init)
            while stmt.cond is None or \
                    self._truthy(self._eval(stmt.cond)):
                self._tick()
                try:
                    self._exec(stmt.body)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.advance is not None:
                    self._eval(stmt.advance)
        finally:
            self._frames[-1].pop()

    def _exec_return(self, stmt: ast.ReturnStmt) -> None:
        value = self._eval(stmt.value) if stmt.value is not None else None
        raise _Return(value)

    def _exec_break(self, stmt: ast.BreakStmt) -> None:
        raise _Break()

    def _exec_continue(self, stmt: ast.ContinueStmt) -> None:
        raise _Continue()

    def _exec_empty(self, stmt: ast.EmptyStmt) -> None:
        pass

    def _exec_labelled_body(self, stmt: ast.Node) -> None:
        self._exec(stmt.body)

    def _exec_goto(self, stmt: ast.GotoStmt) -> None:
        raise _Goto(stmt.label)

    def _exec_block(self, block: ast.CompoundStmt,
                    *, new_scope: bool = True) -> None:
        frame = self._frames[-1]
        if new_scope:
            frame.push()
        try:
            index = 0
            items = block.items
            while index < len(items):
                try:
                    self._exec(items[index])
                except _Goto as goto:
                    target = self._find_label(items, goto.label)
                    if target is None:
                        raise
                    index = target
                    continue
                index += 1
        finally:
            if new_scope:
                frame.pop()

    @staticmethod
    def _find_label(items: list, label: str) -> int | None:
        for i, item in enumerate(items):
            node = item
            while isinstance(node, ast.LabelStmt):
                if node.name == label:
                    return i
                node = node.body
        return None

    def _exec_switch(self, stmt: ast.SwitchStmt) -> None:
        selector = self._as_int(self._eval(stmt.cond))
        body = stmt.body
        if not isinstance(body, ast.CompoundStmt):
            return
        # Locate the matching case (or default) among the top-level items.
        start = None
        default = None
        for i, item in enumerate(body.items):
            node = item
            while isinstance(node, (ast.CaseStmt, ast.DefaultStmt)):
                if isinstance(node, ast.DefaultStmt):
                    if default is None:
                        default = i
                    node = node.body
                else:
                    if start is None and \
                            self._as_int(self._eval(node.value)) == selector:
                        start = i
                        break
                    node = node.body
            if start is not None:
                break
        begin = start if start is not None else default
        if begin is None:
            return
        frame = self._frames[-1]
        frame.push()
        try:
            index = begin
            while index < len(body.items):
                try:
                    self._exec(body.items[index])
                except _Goto as goto:
                    target = self._find_label(body.items, goto.label)
                    if target is None:
                        raise
                    index = target
                    continue
                index += 1
        except _Break:
            pass
        finally:
            frame.pop()

    # ---------------------------------------------------------- expressions

    def _eval(self, expr: ast.Expression):
        # Same dispatch scheme as _exec: exact type -> handler.
        self.steps = steps = self.steps + 1
        if steps > self.step_limit:
            raise StepLimitExceeded(
                f"exceeded {self.step_limit} interpreter steps")
        handler = _EVAL_DISPATCH.get(expr.__class__)
        if handler is None:
            raise VMError(f"cannot evaluate {type(expr).__name__}")
        return handler(self, expr)

    def _eval_literal(self, expr):
        return expr.value

    def _eval_load_lvalue(self, expr):
        ptr, ctype = self._lvalue(expr)
        return self._load(ptr, ctype)

    def _eval_conditional(self, expr: ast.Conditional):
        if self._truthy(self._eval(expr.cond)):
            return self._eval(expr.then_expr)
        return self._eval(expr.else_expr)

    def _eval_cast(self, expr: ast.Cast):
        return self._convert(self._eval(expr.operand), expr.target_type)

    def _eval_sizeof_expr(self, expr: ast.SizeofExpr):
        ctype = expr.operand.ctype
        if ctype is None:
            raise VMError("sizeof on untyped expression")
        return self._sizeof(ctype)

    def _eval_sizeof_type(self, expr: ast.SizeofType):
        return self._sizeof(expr.target_type)

    def _eval_comma(self, expr: ast.Comma):
        self._eval(expr.lhs)
        return self._eval(expr.rhs)

    def _eval_init_list(self, expr: ast.InitList):
        # Compound literal in expression position: evaluate first item.
        return self._eval(expr.items[0]) if expr.items else 0

    def _eval_identifier(self, expr: ast.Identifier):
        name = expr.name
        location = self._lookup(name)
        if location is None:
            if name in self.functions or name in self.natives:
                return FuncRef(name)
            raise VMError(f"use of undeclared identifier {name!r}")
        ptr, ctype = location
        if isinstance(ctype, ArrayType):
            return ptr                  # decay
        return self._load(ptr, ctype)

    def _lookup(self, name: str) -> tuple[Pointer, CType] | None:
        if self._frames:
            found = self._frames[-1].lookup(name)
            if found is not None:
                return found
        if name in self.globals:
            return self.globals[name]
        # Enum constants live in expression position via symbols; the
        # parser resolves them into the tag scope, so fall through.
        return None

    def _string_pointer(self, expr: ast.StringLiteral) -> Pointer:
        cached = self._string_cache.get(expr.text)
        if cached is None:
            cached = self.memory.alloc_bytes(expr.value + b"\x00", "string",
                                             "literal")
            self._string_cache[expr.text] = cached
        return cached

    # lvalues ---------------------------------------------------------------

    def _lvalue(self, expr: ast.Expression) -> tuple[Pointer, CType]:
        if isinstance(expr, ast.Identifier):
            location = self._lookup(expr.name)
            if location is None:
                raise VMError(f"no storage for {expr.name!r}")
            return location
        if isinstance(expr, ast.ArrayAccess):
            base = self._eval(expr.base)
            index_value = self._eval(expr.index)
            elem = self._element_type(expr)
            if not isinstance(base, Pointer) and \
                    isinstance(index_value, Pointer):
                # C's commutative subscript: 1[buf] == buf[1].
                base, index_value = index_value, base
            if not isinstance(base, Pointer):
                raise VMError("subscript on non-pointer value")
            index = self._as_int(index_value)
            return base.moved(index * self._sizeof(elem)), elem
        if isinstance(expr, ast.FieldAccess):
            if expr.arrow:
                base_value = self._eval(expr.base)
                if not isinstance(base_value, Pointer):
                    raise VMError("-> on non-pointer value")
                base_ptr = base_value
                stype = self._pointee_struct(expr.base)
            else:
                base_ptr, base_type = self._lvalue(expr.base)
                stype = base_type
            if not isinstance(stype, StructType):
                raise VMError(f"member access on non-struct {stype}")
            offset, mtype = stype.member_offset(expr.member)
            return base_ptr.moved(offset), mtype
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value = self._eval(expr.operand)
            if not isinstance(value, Pointer):
                raise VMError("dereference of non-pointer value")
            pointee = self._pointee_type(expr.operand)
            return value, pointee
        if isinstance(expr, ast.Cast):
            ptr, _ = self._lvalue(expr.operand)
            return ptr, expr.target_type
        raise VMError(f"not an lvalue: {type(expr).__name__}")

    def _element_type(self, expr: ast.ArrayAccess) -> CType:
        if expr.ctype is not None:
            return expr.ctype
        base_type = expr.base.ctype
        if base_type is not None:
            decayed = base_type.decay()
            if isinstance(decayed, PointerType):
                return decayed.pointee
        return CHAR

    def _pointee_type(self, operand: ast.Expression) -> CType:
        ctype = operand.ctype
        if ctype is not None:
            decayed = ctype.decay()
            if isinstance(decayed, PointerType):
                return decayed.pointee
        return CHAR

    def _pointee_struct(self, operand: ast.Expression) -> CType:
        pointee = self._pointee_type(operand)
        return pointee

    # unary/binary ----------------------------------------------------------

    def _eval_unary(self, expr: ast.Unary):
        op = expr.op
        if op == "&":
            operand = expr.operand
            if isinstance(operand, ast.Identifier) and \
                    self._lookup(operand.name) is None and \
                    (operand.name in self.functions or
                     operand.name in self.natives):
                return self._function_pointer(operand.name)
            ptr, _ = self._lvalue(operand)
            return ptr
        if op == "*":
            ptr, ctype = self._lvalue(expr)
            return self._load(ptr, ctype)
        if op in ("++", "--"):
            ptr, ctype = self._lvalue(expr.operand)
            old = self._load(ptr, ctype)
            delta = 1 if op == "++" else -1
            if isinstance(old, Pointer):
                pointee = ctype.pointee if isinstance(ctype, PointerType) \
                    else CHAR
                new = old.moved(delta * self._sizeof(pointee))
            else:
                new = old + delta
            self._store(ptr, ctype, new)
            return old if expr.is_postfix else self._load(ptr, ctype)
        value = self._eval(expr.operand)
        if op == "-":
            result = -self._as_number(value)
            return self._wrap_arith(result, expr)
        if op == "+":
            return self._as_number(value)
        if op == "~":
            return self._wrap_arith(~self._as_int(value), expr)
        if op == "!":
            return 0 if self._truthy(value) else 1
        raise VMError(f"unknown unary operator {op!r}")

    def _eval_binary(self, expr: ast.Binary):
        op = expr.op
        if op == "&&":
            if not self._truthy(self._eval(expr.lhs)):
                return 0
            return 1 if self._truthy(self._eval(expr.rhs)) else 0
        if op == "||":
            if self._truthy(self._eval(expr.lhs)):
                return 1
            return 1 if self._truthy(self._eval(expr.rhs)) else 0
        lhs = self._eval(expr.lhs)
        rhs = self._eval(expr.rhs)
        return self._binop(op, lhs, rhs, expr)

    def _binop(self, op: str, lhs, rhs, expr: ast.Binary):
        lhs_ptr = isinstance(lhs, Pointer)
        rhs_ptr = isinstance(rhs, Pointer)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self._compare(op, lhs, rhs)
        if lhs_ptr or rhs_ptr:
            return self._pointer_arith(op, lhs, rhs, expr)
        lhs_n = self._as_number(lhs)
        rhs_n = self._as_number(rhs)
        if isinstance(lhs_n, float) or isinstance(rhs_n, float):
            return self._float_op(op, float(lhs_n), float(rhs_n))
        return self._int_op(op, lhs_n, rhs_n, expr)

    def _pointer_arith(self, op: str, lhs, rhs, expr: ast.Binary):
        if op == "-" and isinstance(lhs, Pointer) and \
                isinstance(rhs, Pointer):
            if lhs.block != rhs.block:
                raise MemoryFault("wild-pointer",
                                  "subtraction of unrelated pointers")
            size = self._sizeof(self._pointee_type(expr.lhs))
            return (lhs.offset - rhs.offset) // max(size, 1)
        if isinstance(lhs, Pointer) and not isinstance(rhs, Pointer):
            size = self._sizeof(self._pointee_type(expr.lhs))
            delta = self._as_int(rhs) * size
            return lhs.moved(delta if op == "+" else -delta)
        if isinstance(rhs, Pointer) and op == "+":
            size = self._sizeof(self._pointee_type(expr.rhs))
            return rhs.moved(self._as_int(lhs) * size)
        raise VMError(f"bad pointer arithmetic {op!r}")

    def _compare(self, op: str, lhs, rhs) -> int:
        if isinstance(lhs, Pointer) or isinstance(rhs, Pointer):
            lhs_k = self._pointer_key(lhs)
            rhs_k = self._pointer_key(rhs)
            table = {"==": lhs_k == rhs_k, "!=": lhs_k != rhs_k,
                     "<": lhs_k < rhs_k, ">": lhs_k > rhs_k,
                     "<=": lhs_k <= rhs_k, ">=": lhs_k >= rhs_k}
            return 1 if table[op] else 0
        lhs_n = self._as_number(lhs)
        rhs_n = self._as_number(rhs)
        table = {"==": lhs_n == rhs_n, "!=": lhs_n != rhs_n,
                 "<": lhs_n < rhs_n, ">": lhs_n > rhs_n,
                 "<=": lhs_n <= rhs_n, ">=": lhs_n >= rhs_n}
        return 1 if table[op] else 0

    @staticmethod
    def _pointer_key(value) -> tuple[int, int]:
        if isinstance(value, Pointer):
            return (value.block, value.offset)
        if isinstance(value, FuncRef):
            return (-1, hash(value.name) & 0xFFFF)
        return (0, int(value))

    def _int_op(self, op: str, lhs: int, rhs: int, expr: ast.Binary) -> int:
        if op in ("/", "%") and rhs == 0:
            raise MemoryFault("divide-by-zero", "integer division by zero")
        if op == "/":
            quotient = abs(lhs) // abs(rhs)
            result = quotient if (lhs >= 0) == (rhs >= 0) else -quotient
        elif op == "%":
            quotient = abs(lhs) // abs(rhs)
            signed_q = quotient if (lhs >= 0) == (rhs >= 0) else -quotient
            result = lhs - signed_q * rhs
        elif op == "+":
            result = lhs + rhs
        elif op == "-":
            result = lhs - rhs
        elif op == "*":
            result = lhs * rhs
        elif op == "<<":
            result = lhs << (rhs & 63)
        elif op == ">>":
            result = lhs >> (rhs & 63)
        elif op == "&":
            result = lhs & rhs
        elif op == "|":
            result = lhs | rhs
        elif op == "^":
            result = lhs ^ rhs
        else:
            raise VMError(f"unknown binary operator {op!r}")
        return self._wrap_arith(result, expr)

    @staticmethod
    def _float_op(op: str, lhs: float, rhs: float):
        if op in ("/",) and rhs == 0.0:
            return float("inf") if lhs > 0 else float("-inf") if lhs < 0 \
                else float("nan")
        table = {"+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                 "/": lhs / rhs if rhs != 0.0 else 0.0}
        if op not in table:
            raise VMError(f"bad float operator {op!r}")
        return table[op]

    def _wrap_arith(self, value: int, expr: ast.Expression) -> int:
        ctype = expr.ctype
        if isinstance(ctype, (IntType, BoolType, EnumType)):
            return ctype.wrap(value)
        return IntType("long").wrap(value)

    # assignment ------------------------------------------------------------

    def _eval_assignment(self, expr: ast.Assignment):
        ptr, ctype = self._lvalue(expr.lhs)
        if expr.op == "=":
            value = self._eval(expr.rhs)
            self._store(ptr, ctype, value)
            return self._load(ptr, ctype) \
                if not isinstance(ctype, (ArrayType, StructType)) else value
        old = self._load(ptr, ctype)
        rhs = self._eval(expr.rhs)
        op = expr.op[:-1]
        if isinstance(old, Pointer):
            size = self._sizeof(ctype.pointee
                                if isinstance(ctype, PointerType) else CHAR)
            delta = self._as_int(rhs) * size
            new = old.moved(delta if op == "+" else -delta)
        else:
            new = self._binop(op, old, rhs, _FakeBinary(expr, op))
        self._store(ptr, ctype, new)
        return new

    # calls -----------------------------------------------------------------

    def _eval_call(self, expr: ast.Call):
        func = expr.func
        args = [self._eval(a) for a in expr.args]
        if isinstance(func, ast.Identifier):
            name = func.name
            location = self._lookup(name)
            if location is not None and \
                    isinstance(location[1], PointerType):
                target = self._load(*location)
                return self._call_value(target, args)
            return self.call_function(name, args)
        target = self._eval(func)
        return self._call_value(target, args)

    def _call_value(self, target, args):
        if isinstance(target, FuncRef):
            return self.call_function(target.name, args)
        if isinstance(target, Pointer):
            name = self._block_func.get(target.block)
            if name is not None:
                return self.call_function(name, args)
        raise VMError("call through non-function value")

    def _function_pointer(self, name: str) -> Pointer:
        found = self._func_blocks.get(name)
        if found is None:
            found = self.memory.alloc(1, "func", name)
            self._func_blocks[name] = found
            self._block_func[found.block] = name
        return found

    # va_list ---------------------------------------------------------------

    def _eval_va_arg(self, expr: ast.VaArg):
        ptr, _ = self._lvalue(expr.ap)
        state = self._valists.get(ptr.block)
        if state is None:
            raise VMError("va_arg on un-started va_list")
        return self._convert(state.next(), expr.target_type)

    def va_start(self, ap_ptr: Pointer) -> None:
        frame = self._frames[-1]
        self._valists[ap_ptr.block] = VaListState(frame.valist_args)

    def va_end(self, ap_ptr: Pointer) -> None:
        self._valists.pop(ap_ptr.block, None)

    def va_copy(self, dst_ptr: Pointer, src_ptr: Pointer) -> None:
        src = self._valists.get(src_ptr.block)
        if src is not None:
            self._valists[dst_ptr.block] = src.copy()

    def valist_for(self, value) -> VaListState:
        """Resolve a va_list argument value passed to a native (vsprintf)."""
        if isinstance(value, VaListState):
            return value
        if isinstance(value, Pointer):
            state = self._valists.get(value.block)
            if state is not None:
                return state
        raise VMError("expected a va_list value")

    # loads/stores ----------------------------------------------------------

    def _load(self, ptr: Pointer, ctype: CType):
        if isinstance(ctype, ArrayType):
            return ptr
        if isinstance(ctype, (IntType, BoolType, EnumType)):
            size = ctype.sizeof()
            signed = bool(getattr(ctype, "signed", True))
            return self.memory.read_int(ptr, size, signed)
        if isinstance(ctype, FloatType):
            raw = self.memory.read_bytes(ptr, ctype.sizeof())
            fmt = "<f" if ctype.kind == "float" else "<d"
            if ctype.kind == "long double":
                raw = raw[:8]
                fmt = "<d"
            return _struct.unpack(fmt, raw)[0]
        if isinstance(ctype, PointerType):
            raw = self.memory.read_int(ptr, 8, signed=False)
            decoded = decode_pointer(raw)
            if decoded is not None:
                return decoded
            return Pointer(0, raw)      # integer reinterpreted as pointer
        if isinstance(ctype, StructType):
            return StructValue(self.memory.read_bytes(ptr, ctype.sizeof()),
                               ctype)
        if isinstance(ctype, VaListType):
            return ptr
        raise VMError(f"cannot load type {ctype}")

    def _store(self, ptr: Pointer, ctype: CType, value) -> None:
        if isinstance(ctype, (IntType, BoolType, EnumType)):
            if isinstance(value, Pointer):
                self.memory.write_int(ptr, encode_pointer(value),
                                      ctype.sizeof())
                return
            if isinstance(value, float):
                value = int(value)
            self.memory.write_int(ptr, ctype.wrap(self._as_int(value)),
                                  ctype.sizeof())
            return
        if isinstance(ctype, FloatType):
            fmt = "<f" if ctype.kind == "float" else "<d"
            size = 4 if ctype.kind == "float" else 8
            raw = _struct.pack(fmt, float(self._as_number(value)))
            if ctype.kind == "long double":
                raw = raw + b"\x00" * 8
            self.memory.write_bytes(ptr, raw)
            return
        if isinstance(ctype, PointerType):
            if isinstance(value, FuncRef):
                value = self._function_pointer(value.name)
            if isinstance(value, Pointer):
                self.memory.write_int(ptr, encode_pointer(value), 8)
            else:
                self.memory.write_int(ptr, self._as_int(value), 8)
            return
        if isinstance(ctype, StructType):
            if isinstance(value, StructValue):
                self.memory.write_bytes(ptr, value.data[:ctype.sizeof()])
                return
            if isinstance(value, int) and value == 0:
                self.memory.write_bytes(ptr, bytes(ctype.sizeof()))
                return
            raise VMError(f"cannot store {value!r} into struct")
        if isinstance(ctype, ArrayType):
            if isinstance(value, Pointer):
                size = min(self._sizeof(ctype),
                           self.memory.block_of(value).size - value.offset)
                self.memory.write_bytes(ptr,
                                        self.memory.read_bytes(value, size))
                return
            raise VMError("cannot assign to array")
        if isinstance(ctype, VaListType):
            return      # va_list assignment handled via va_copy
        raise VMError(f"cannot store type {ctype}")

    # conversions -----------------------------------------------------------

    def _convert(self, value, ctype: CType):
        if isinstance(ctype, PointerType):
            if isinstance(value, Pointer):
                return value
            if isinstance(value, FuncRef):
                return self._function_pointer(value.name)
            return Pointer(0, self._as_int(value))
        if isinstance(ctype, (IntType, BoolType, EnumType)):
            if isinstance(value, Pointer):
                return ctype.wrap(encode_pointer(value))
            if isinstance(value, float):
                return ctype.wrap(int(value))
            return ctype.wrap(self._as_int(value))
        if isinstance(ctype, FloatType):
            return float(self._as_number(value))
        if isinstance(ctype, VoidType):
            return 0
        return value

    # helpers ---------------------------------------------------------------

    @staticmethod
    def _truthy(value) -> bool:
        if isinstance(value, Pointer):
            return not value.is_null
        if isinstance(value, FuncRef):
            return True
        if isinstance(value, StructValue):
            return True
        return bool(value)

    @staticmethod
    def _as_int(value) -> int:
        if isinstance(value, Pointer):
            return encode_pointer(value)
        if isinstance(value, float):
            return int(value)
        if isinstance(value, FuncRef):
            return 1
        return int(value)

    @staticmethod
    def _as_number(value):
        if isinstance(value, Pointer):
            return encode_pointer(value)
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, FuncRef):
            return 1
        raise VMError(f"not a number: {value!r}")

    def _sizeof(self, ctype: CType) -> int:
        return ctype.sizeof()

    # stdio plumbing shared with libc ----------------------------------------

    def write_stdout(self, data: bytes) -> None:
        self.stdout.extend(data)

    def read_stdin_line(self) -> bytes | None:
        """Read up to and including a newline; None at EOF."""
        if self.stdin_pos >= len(self.stdin):
            return None
        idx = self.stdin.find(b"\n", self.stdin_pos)
        if idx == -1:
            line = self.stdin[self.stdin_pos:]
            self.stdin_pos = len(self.stdin)
        else:
            line = self.stdin[self.stdin_pos:idx + 1]
            self.stdin_pos = idx + 1
        return line


# Exact-type dispatch tables for the interpreter's two hot loops.  The
# AST hierarchy is flat (no concrete node subclasses another), so keying
# on the node class is equivalent to the isinstance chains it replaced.
_EXEC_DISPATCH = {
    ast.ExprStmt: Interpreter._exec_expr_stmt,
    ast.Declaration: Interpreter._exec_declaration,
    ast.CompoundStmt: Interpreter._exec_block,
    ast.IfStmt: Interpreter._exec_if,
    ast.WhileStmt: Interpreter._exec_while,
    ast.DoWhileStmt: Interpreter._exec_do_while,
    ast.ForStmt: Interpreter._exec_for,
    ast.ReturnStmt: Interpreter._exec_return,
    ast.BreakStmt: Interpreter._exec_break,
    ast.ContinueStmt: Interpreter._exec_continue,
    ast.SwitchStmt: Interpreter._exec_switch,
    ast.EmptyStmt: Interpreter._exec_empty,
    ast.LabelStmt: Interpreter._exec_labelled_body,
    ast.GotoStmt: Interpreter._exec_goto,
    ast.CaseStmt: Interpreter._exec_labelled_body,
    ast.DefaultStmt: Interpreter._exec_labelled_body,
}

_EVAL_DISPATCH = {
    ast.IntLiteral: Interpreter._eval_literal,
    ast.FloatLiteral: Interpreter._eval_literal,
    ast.CharLiteral: Interpreter._eval_literal,
    ast.StringLiteral: Interpreter._string_pointer,
    ast.Identifier: Interpreter._eval_identifier,
    ast.ArrayAccess: Interpreter._eval_load_lvalue,
    ast.FieldAccess: Interpreter._eval_load_lvalue,
    ast.Call: Interpreter._eval_call,
    ast.Unary: Interpreter._eval_unary,
    ast.Binary: Interpreter._eval_binary,
    ast.Assignment: Interpreter._eval_assignment,
    ast.Conditional: Interpreter._eval_conditional,
    ast.Cast: Interpreter._eval_cast,
    ast.SizeofExpr: Interpreter._eval_sizeof_expr,
    ast.SizeofType: Interpreter._eval_sizeof_type,
    ast.Comma: Interpreter._eval_comma,
    ast.VaArg: Interpreter._eval_va_arg,
    ast.InitList: Interpreter._eval_init_list,
}


class _FakeBinary:
    """Adapter giving _binop the typed context of a compound assignment."""

    def __init__(self, assignment: ast.Assignment, op: str):
        self.lhs = assignment.lhs
        self.rhs = assignment.rhs
        self.op = op
        self.ctype = assignment.lhs.ctype


def run_source(text: str, *, stdin: bytes = b"",
               step_limit: int = 5_000_000,
               mem_limit: int | None = None,
               entry: str = "main") -> ExecutionResult:
    """Parse preprocessed C text, type it, and run it.

    The parse/bind/typecheck prologue goes through the shared
    :class:`~repro.core.session.AnalysisSession` — running a text that a
    transformation just produced (or verified) reuses its cached unit.
    The interpreter treats the AST as read-only, so cached units are
    safe to execute any number of times.
    """
    from ..core.session import get_session
    parsed = get_session().parse(text, "<program>")
    interp = Interpreter([parsed.unit], stdin=stdin,
                         step_limit=step_limit, mem_limit=mem_limit)
    return interp.run(entry)


def run_program_files(files: dict[str, str], *, stdin: bytes = b"",
                      step_limit: int = 5_000_000,
                      mem_limit: int | None = None,
                      entry: str = "main") -> ExecutionResult:
    """Parse, link, and run several preprocessed translation units."""
    from ..core.session import get_session
    session = get_session()
    units = [session.parse(text, name).unit
             for name, text in files.items()]
    interp = Interpreter(units, stdin=stdin,
                         step_limit=step_limit, mem_limit=mem_limit)
    return interp.run(entry)
