"""Native VM implementations of the 18 stralloc library functions.

The struct layout is fixed by STR's injected typedef::

    struct stralloc { char *s; char *f; unsigned int len; unsigned int a; }

offsets: s@0 (8B), f@8 (8B), len@16 (4B), a@20 (4B), size 24.

These functions bounds-check every operation against the tracked
allocation, which is precisely the protection STR introduces: pointer
arithmetic and indexed access become checked library calls.  Capacity is
allocated lazily — STR initializes ``{0,0,0}`` and records a declared
array's size in ``a`` before the first use (paper's ``buf->a = 1024``).
"""

from __future__ import annotations

from .memory import MemoryFault, NULL, Pointer, VMError, decode_pointer, \
    encode_pointer

_OFF_S = 0
_OFF_F = 8
_OFF_LEN = 16
_OFF_A = 20
STRALLOC_SIZE = 24
_MIN_CAPACITY = 16


def _ptr_arg(value) -> Pointer:
    if isinstance(value, Pointer):
        return value
    if value == 0:
        return NULL
    raise VMError(f"stralloc function expected a pointer, got {value!r}")


class _SA:
    """Accessor for a stralloc struct living in VM memory."""

    def __init__(self, interp, sa_ptr: Pointer):
        self.interp = interp
        self.mem = interp.memory
        self.base = _ptr_arg(sa_ptr)
        if self.base.is_null:
            raise MemoryFault("null-dereference",
                              "stralloc operation on NULL")

    # field accessors

    def _read_ptr(self, offset: int) -> Pointer:
        raw = self.mem.read_int(self.base.moved(offset), 8, signed=False)
        decoded = decode_pointer(raw)
        return decoded if decoded is not None else NULL

    def _write_ptr(self, offset: int, ptr: Pointer) -> None:
        self.mem.write_int(self.base.moved(offset), encode_pointer(ptr), 8)

    @property
    def s(self) -> Pointer:
        return self._read_ptr(_OFF_S)

    @s.setter
    def s(self, ptr: Pointer) -> None:
        self._write_ptr(_OFF_S, ptr)

    @property
    def f(self) -> Pointer:
        return self._read_ptr(_OFF_F)

    @f.setter
    def f(self, ptr: Pointer) -> None:
        self._write_ptr(_OFF_F, ptr)

    @property
    def len(self) -> int:
        return self.mem.read_int(self.base.moved(_OFF_LEN), 4, signed=False)

    @len.setter
    def len(self, value: int) -> None:
        self.mem.write_int(self.base.moved(_OFF_LEN), max(value, 0), 4)

    @property
    def a(self) -> int:
        return self.mem.read_int(self.base.moved(_OFF_A), 4, signed=False)

    @a.setter
    def a(self, value: int) -> None:
        self.mem.write_int(self.base.moved(_OFF_A), max(value, 0), 4)

    # derived state

    @property
    def offset(self) -> int:
        """How far s has been advanced past the base pointer f."""
        s, f = self.s, self.f
        if s.is_null or f.is_null:
            return 0
        return s.offset - f.offset

    def ready(self, n: int) -> None:
        """Ensure n bytes are available at s (grow/allocate as needed).

        Capacity accounting (`a`) follows the reference C implementation
        exactly — `a` is the requested capacity, not the allocator's
        rounded block size — so VM and natively compiled stralloc behave
        identically.
        """
        f = self.f
        if f.is_null:
            want = max(n, self.a, _MIN_CAPACITY)
            new = self.mem.alloc_heap(want, "stralloc")
            self.f = new
            self.s = new
            self.a = want
            self.len = 0
            return
        if self.offset + n > self.a:
            want = self.offset + n
            grown = want + (want >> 3) + _MIN_CAPACITY
            new = self.mem.alloc_heap(grown, "stralloc-grow")
            old_data = self.mem.read_bytes(f, self.a)
            self.mem.write_bytes(new, old_data)
            offset = self.offset
            self.mem.free(f)
            self.f = new
            self.s = new.moved(offset)
            self.a = grown

    def write_at(self, index: int, data: bytes) -> None:
        self.ready(index + len(data))
        self.mem.write_bytes(self.s.moved(index), data)

    def recompute_len_from(self, start: int) -> int:
        """First NUL at or after ``start`` (what strlen would see), or the
        allocation size when unterminated."""
        if self.f.is_null:
            return 0
        limit = self.a - self.offset
        if start >= limit:
            return limit
        data = self.mem.read_bytes(self.s.moved(start), limit - start)
        pos = data.find(b"\x00")
        return start + pos if pos != -1 else limit

    def read_at(self, index: int, size: int) -> bytes:
        if self.f.is_null or self.offset + index + size > self.a or \
                self.offset + index < 0:
            raise MemoryFault(
                "stralloc-bounds",
                f"checked access at index {index} outside stralloc "
                f"capacity {self.a}")
        return self.mem.read_bytes(self.s.moved(index), size)


# -------------------------------------------------------------- the library

def sa_init(interp, args):
    sa = _SA(interp, args[0])
    sa.s = NULL
    sa.f = NULL
    sa.len = 0
    sa.a = 0
    return 1


def sa_ready(interp, args):
    sa = _SA(interp, args[0])
    sa.ready(int(args[1]))
    return 1


def sa_free(interp, args):
    sa = _SA(interp, args[0])
    if not sa.f.is_null:
        interp.memory.free(sa.f)
    sa.s = NULL
    sa.f = NULL
    sa.len = 0
    sa.a = 0
    return 0


def sa_copybuf(interp, args):
    sa = _SA(interp, args[0])
    n = int(args[2])
    data = interp.memory.read_bytes(_ptr_arg(args[1]), n)
    sa.write_at(0, data + b"\x00")
    sa.len = n
    return 1


def sa_copys(interp, args):
    sa = _SA(interp, args[0])
    data = interp.memory.read_cstring(_ptr_arg(args[1]))
    sa.write_at(0, data + b"\x00")
    sa.len = len(data)
    return 1


def sa_catbuf(interp, args):
    sa = _SA(interp, args[0])
    n = int(args[2])
    data = interp.memory.read_bytes(_ptr_arg(args[1]), n)
    start = sa.len
    sa.write_at(start, data + b"\x00")
    sa.len = start + n
    return 1


def sa_cats(interp, args):
    sa = _SA(interp, args[0])
    data = interp.memory.read_cstring(_ptr_arg(args[1]))
    start = sa.len
    sa.write_at(start, data + b"\x00")
    sa.len = start + len(data)
    return 1


def sa_append(interp, args):
    sa = _SA(interp, args[0])
    start = sa.len
    sa.write_at(start, bytes([int(args[1]) & 0xFF, 0]))
    sa.len = start + 1
    return 1


def sa_memset(interp, args):
    """memset analog: set exactly n bytes (no NUL appended — C's memset
    never terminates), tracking the logical length like strlen would."""
    sa = _SA(interp, args[0])
    value = int(args[1]) & 0xFF
    n = int(args[2])
    if n > 0:
        sa.write_at(0, bytes([value]) * n)
        if value == 0:
            sa.len = 0
        elif n >= sa.len:
            # The old terminator may have been overwritten: rescan.
            sa.len = sa.recompute_len_from(n)
    return 1


def sa_increment_by(interp, args):
    """buf++ analog: advance s, never past the allocation.

    A move that would leave the allocation is *refused* (clamped to the
    end, returning 0) rather than performed: the transformed program keeps
    running and the overflow never happens.
    """
    sa = _SA(interp, args[0])
    n = int(args[1])
    sa.ready(1)
    ok = 1
    if sa.offset + n > sa.a:
        n = sa.a - sa.offset
        ok = 0
    sa.s = sa.s.moved(n)
    sa.len = sa.len - n if sa.len >= n else 0
    return ok


def sa_decrement_by(interp, args):
    """buf-- analog: move s back toward f, never before it.

    A move before the base is refused (clamped to the base, returning 0):
    the buffer underwrite is prevented and execution continues.
    """
    sa = _SA(interp, args[0])
    n = int(args[1])
    ok = 1
    if n > sa.offset:
        n = sa.offset
        ok = 0
    sa.s = sa.s.moved(-n)
    sa.len = sa.len + n
    return ok


def sa_get_char_at(interp, args):
    """buf[i] read analog: bounds-checked; out of range yields 0 rather
    than an out-of-bounds read (checked-and-clamped semantics)."""
    sa = _SA(interp, args[0])
    index = int(args[1])
    if sa.f.is_null or index < 0 or sa.offset + index >= sa.a:
        return 0
    return sa.read_at(index, 1)[0]


def sa_replace_by(interp, args):
    """buf[i] = c analog: grows the allocation so the write is in bounds.

    A negative index (buffer underwrite) is refused — the store does not
    happen and 0 is returned, so execution continues safely.  ``len``
    tracks exactly what strlen would return: a stored NUL truncates the
    logical string; overwriting the terminator re-scans for the next one
    (the bytes beyond may be stale content, as in real C).
    """
    sa = _SA(interp, args[0])
    index = int(args[1])
    value = int(args[2]) & 0xFF
    if index < 0:
        return 0
    sa.write_at(index, bytes([value]))
    if value == 0:
        if index < sa.len:
            sa.len = index
    elif index == sa.len:
        # The terminator was overwritten: the string now runs to the next
        # NUL (freshly grown regions are zeroed, so this is well-defined).
        sa.len = sa.recompute_len_from(index + 1)
    # index < len or index > len: the terminator at len is untouched.
    return 1


def sa_compare(interp, args):
    a = _SA(interp, args[0])
    b = _SA(interp, args[1])
    data_a = a.read_at(0, a.len) if a.len and not a.f.is_null else b""
    data_b = b.read_at(0, b.len) if b.len and not b.f.is_null else b""
    return 0 if data_a == data_b else (-1 if data_a < data_b else 1)


def sa_equals(interp, args):
    return 1 if sa_compare(interp, args) == 0 else 0


def sa_find_char(interp, args):
    sa = _SA(interp, args[0])
    if sa.f.is_null or sa.len == 0:
        return -1
    data = sa.read_at(0, sa.len)
    idx = data.find(bytes([int(args[1]) & 0xFF]))
    return idx


def sa_substring_at(interp, args):
    sa = _SA(interp, args[0])
    needle = _SA(interp, args[1])
    hay = sa.read_at(0, sa.len) if sa.len and not sa.f.is_null else b""
    sub = needle.read_at(0, needle.len) \
        if needle.len and not needle.f.is_null else b""
    if not sub:
        return 0
    return hay.find(sub)


def sa_length(interp, args):
    return _SA(interp, args[0]).len


STRALLOC_NATIVES = {
    "stralloc_init": sa_init,
    "stralloc_ready": sa_ready,
    "stralloc_free": sa_free,
    "stralloc_copys": sa_copys,
    "stralloc_copybuf": sa_copybuf,
    "stralloc_cats": sa_cats,
    "stralloc_catbuf": sa_catbuf,
    "stralloc_append": sa_append,
    "stralloc_memset": sa_memset,
    "stralloc_increment_by": sa_increment_by,
    "stralloc_decrement_by": sa_decrement_by,
    "stralloc_get_dereferenced_char_at": sa_get_char_at,
    "stralloc_dereference_replace_by": sa_replace_by,
    "stralloc_compare": sa_compare,
    "stralloc_equals": sa_equals,
    "stralloc_find_char": sa_find_char,
    "stralloc_substring_at": sa_substring_at,
    "stralloc_length": sa_length,
}
