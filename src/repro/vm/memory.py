"""VM memory model: blocks, typed pointers, byte-accurate bounds checking.

Every object (global, local, heap allocation, string literal) lives in its
own :class:`Block`.  A pointer value is ``(block_id, offset)``; any read or
write outside ``[0, size)`` of its block raises a :class:`MemoryFault`
naming the CWE-style direction (overflow/underflow, read/write) — this is
what lets the evaluation *observe* that a SAMATE bad function overflows
before transformation and does not after.

``malloc_usable_size`` rounds allocation sizes up to 8 bytes (glibc-like),
so the paper's memcpy clamp logic is exercised with usable > requested.
"""

from __future__ import annotations



class VMError(Exception):
    """Base class for all VM runtime errors."""


class MemoryFault(VMError):
    """An out-of-bounds / invalid memory operation."""

    def __init__(self, kind: str, message: str):
        self.kind = kind
        super().__init__(f"{kind}: {message}")


class StepLimitExceeded(VMError):
    """The interpreter's step budget ran out (runaway loop)."""


_USABLE_ALIGN = 8


def usable_size(requested: int) -> int:
    """glibc-style rounding of heap allocation sizes."""
    if requested <= 0:
        return _USABLE_ALIGN
    return (requested + _USABLE_ALIGN - 1) // _USABLE_ALIGN * _USABLE_ALIGN


class Pointer:
    """A typed machine pointer: block id + byte offset.

    Offsets outside the block are representable (C allows forming
    one-past-the-end and even wilder pointers); only *dereferencing* them
    faults.

    Plain ``__slots__`` class rather than a frozen dataclass: pointers
    are created on nearly every VM memory operation, and the frozen
    ``__init__`` (which funnels through ``object.__setattr__``) showed
    up in pipeline profiles.  Value semantics are preserved by the
    explicit ``__eq__``/``__hash__``.
    """

    __slots__ = ("block", "offset")

    def __init__(self, block: int, offset: int):
        self.block = block
        self.offset = offset

    @property
    def is_null(self) -> bool:
        return self.block == 0

    def moved(self, delta: int) -> "Pointer":
        return Pointer(self.block, self.offset + delta)

    def __eq__(self, other) -> bool:
        return isinstance(other, Pointer) and \
            self.block == other.block and self.offset == other.offset

    def __hash__(self) -> int:
        return hash((self.block, self.offset))

    def __repr__(self) -> str:
        if self.block == 0:
            return "NULL"
        return f"Ptr(b{self.block}+{self.offset})"


NULL = Pointer(0, 0)

# Pointers stored *in memory* are encoded into 8 bytes with a sentinel top
# byte, so integer data and pointer data remain distinguishable when read
# back.  Small-model assumptions (<= 2^28 blocks, <= 2^28 byte offsets)
# hold by orders of magnitude for every program the suite runs.
_PTR_SENTINEL = 0x55
_PTR_TAG = _PTR_SENTINEL << 56


def encode_pointer(ptr: Pointer) -> int:
    if ptr.is_null:
        return 0
    if not (0 <= ptr.block < (1 << 28)):
        raise VMError(f"unencodable pointer block {ptr.block}")
    # Offsets are stored as 28-bit two's complement so that before-the-
    # beginning pointers (underwrite tests!) survive a memory round-trip.
    offset = ptr.offset & ((1 << 28) - 1)
    return _PTR_TAG | (ptr.block << 28) | offset


def decode_pointer(value: int) -> Pointer | None:
    """Decode an 8-byte integer back to a Pointer, or None if not tagged."""
    if value == 0:
        return NULL
    if (value >> 56) & 0xFF == _PTR_SENTINEL:
        offset = value & ((1 << 28) - 1)
        if offset >= 1 << 27:
            offset -= 1 << 28
        return Pointer((value >> 28) & ((1 << 28) - 1), offset)
    return None


class Block:
    """One allocation."""

    __slots__ = ("bid", "size", "data", "kind", "label", "freed",
                 "requested")

    def __init__(self, bid: int, size: int, kind: str, label: str,
                 requested: int | None = None):
        self.bid = bid
        self.size = size
        self.data = bytearray(size)
        self.kind = kind            # stack | heap | global | string | file
        self.label = label
        self.freed = False
        self.requested = requested if requested is not None else size

    def __repr__(self) -> str:
        state = " freed" if self.freed else ""
        return f"Block#{self.bid}({self.kind}:{self.label}, {self.size}B{state})"


class Memory:
    """The VM's address space.

    ``limit_bytes`` (when set) is a *cumulative* allocation budget: once
    the total bytes ever allocated would exceed it, further allocations
    raise ``MemoryFault('mem-limit', …)``.  Cumulative rather than live
    so a runaway allocation loop trips the budget even if it frees as it
    goes; like ``step-limit``, ``mem-limit`` is a resource fault, not a
    memory-safety trap (it is excluded from
    :data:`~repro.vm.interp.MEMORY_TRAP_KINDS`).
    """

    def __init__(self, limit_bytes: int | None = None):
        # Block 0 is reserved so that block id 0 means NULL.
        self._blocks: dict[int, Block] = {}
        self._next_bid = 1
        self.fault_on_uninitialized = False
        self.limit_bytes = limit_bytes
        self.allocated_bytes = 0

    # ----------------------------------------------------------- allocation

    def alloc(self, size: int, kind: str, label: str = "",
              requested: int | None = None) -> Pointer:
        if size < 0:
            raise MemoryFault("bad-alloc", f"negative size {size}")
        if self.limit_bytes is not None and \
                self.allocated_bytes + size > self.limit_bytes:
            raise MemoryFault(
                "mem-limit",
                f"allocation of {size}B for {kind}:{label or '?'} would "
                f"exceed the {self.limit_bytes}B budget "
                f"({self.allocated_bytes}B already allocated)")
        self.allocated_bytes += size
        block = Block(self._next_bid, size, kind, label, requested)
        self._blocks[self._next_bid] = block
        self._next_bid += 1
        return Pointer(block.bid, 0)

    def alloc_heap(self, requested: int, label: str = "heap") -> Pointer:
        return self.alloc(usable_size(requested), "heap", label,
                          requested=requested)

    def alloc_bytes(self, data: bytes, kind: str, label: str = "") -> Pointer:
        ptr = self.alloc(len(data), kind, label)
        self._blocks[ptr.block].data[:] = data
        return ptr

    def free(self, ptr: Pointer) -> None:
        if ptr.is_null:
            return
        block = self._blocks.get(ptr.block)
        if block is None:
            raise MemoryFault("invalid-free", f"free of unknown {ptr}")
        if block.freed:
            raise MemoryFault("double-free", f"double free of {block}")
        if block.kind != "heap":
            raise MemoryFault("invalid-free",
                              f"free of non-heap {block}")
        if ptr.offset != 0:
            raise MemoryFault("invalid-free",
                              f"free of interior pointer {ptr}")
        block.freed = True

    def release(self, ptr: Pointer) -> None:
        """Stack-frame teardown: mark the block dead (dangling detection)."""
        block = self._blocks.get(ptr.block)
        if block is not None:
            block.freed = True

    # ------------------------------------------------------------- queries

    def block_of(self, ptr: Pointer) -> Block:
        if ptr.block == 0:
            raise MemoryFault("null-dereference", "access through NULL")
        block = self._blocks.get(ptr.block)
        if block is None:
            raise MemoryFault("wild-pointer", f"access through {ptr}")
        if block.freed:
            raise MemoryFault("use-after-free",
                              f"access to freed {block}")
        return block

    def usable_size_of(self, ptr: Pointer) -> int:
        block = self.block_of(ptr)
        if block.kind != "heap":
            # Real malloc_usable_size on a non-heap pointer is undefined
            # behaviour (the paper notes it segfaults); surface it.
            raise MemoryFault(
                "invalid-usable-size",
                f"malloc_usable_size on non-heap {block}")
        return block.size

    # ------------------------------------------------------------ accessors

    def _check(self, ptr: Pointer, size: int, writing: bool) -> Block:
        block = self.block_of(ptr)
        start = ptr.offset
        end = start + size
        if start < 0:
            kind = "buffer-underwrite" if writing else "buffer-underread"
            raise MemoryFault(kind,
                              f"{'write' if writing else 'read'} at "
                              f"offset {start} before {block}")
        if end > block.size:
            kind = "buffer-overflow" if writing else "buffer-overread"
            raise MemoryFault(kind,
                              f"{'write' if writing else 'read'} of "
                              f"{size}B at offset {start} past "
                              f"{block} ({block.size}B)")
        return block

    def read_bytes(self, ptr: Pointer, size: int) -> bytes:
        block = self._check(ptr, size, writing=False)
        return bytes(block.data[ptr.offset:ptr.offset + size])

    def write_bytes(self, ptr: Pointer, data: bytes) -> None:
        block = self._check(ptr, len(data), writing=True)
        block.data[ptr.offset:ptr.offset + len(data)] = data

    def read_int(self, ptr: Pointer, size: int, signed: bool) -> int:
        # Happy path fully inlined (one dict probe + bounds compares);
        # every failure falls back to _check/block_of for the precise
        # fault kind.  int.from_bytes accepts the bytearray slice
        # directly — no intermediate bytes copy on this very hot path.
        block = self._blocks.get(ptr.block)
        offset = ptr.offset
        end = offset + size
        if block is None or block.freed or ptr.block == 0 or \
                offset < 0 or end > block.size:
            block = self._check(ptr, size, writing=False)
        return int.from_bytes(block.data[offset:end],
                              "little", signed=signed)

    def write_int(self, ptr: Pointer, value: int, size: int) -> None:
        block = self._blocks.get(ptr.block)
        offset = ptr.offset
        end = offset + size
        if block is None or block.freed or ptr.block == 0 or \
                offset < 0 or end > block.size:
            block = self._check(ptr, size, writing=True)
        value &= (1 << (8 * size)) - 1
        block.data[offset:end] = value.to_bytes(size, "little")

    def read_cstring(self, ptr: Pointer, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string; walking past the block faults."""
        block = self.block_of(ptr)
        out = bytearray()
        offset = ptr.offset
        while len(out) < limit:
            if offset < 0:
                raise MemoryFault("buffer-underread",
                                  f"string read before {block}")
            if offset >= block.size:
                raise MemoryFault("buffer-overread",
                                  f"unterminated string read past {block}")
            byte = block.data[offset]
            if byte == 0:
                return bytes(out)
            out.append(byte)
            offset += 1
        raise MemoryFault("runaway-string", "string longer than limit")

    def memset(self, ptr: Pointer, byte: int, size: int) -> None:
        block = self._check(ptr, size, writing=True)
        block.data[ptr.offset:ptr.offset + size] = bytes([byte & 0xFF]) * size

    def memcopy(self, dst: Pointer, src: Pointer, size: int) -> None:
        data = self.read_bytes(src, size)
        self.write_bytes(dst, data)

    @property
    def live_heap_blocks(self) -> int:
        return sum(1 for b in self._blocks.values()
                   if b.kind == "heap" and not b.freed)

    @property
    def block_count(self) -> int:
        return len(self._blocks)
